//! Precision traces — the data behind paper Fig 17's heat map — and the
//! cost ordering of the eight (W, A, G) settings.

/// A per-layer (W, A, G) mantissa-width setting, each 2 or 4 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting {
    /// Weight mantissa bits.
    pub w: u32,
    /// Activation mantissa bits.
    pub a: u32,
    /// Gradient mantissa bits.
    pub g: u32,
}

impl Setting {
    /// All eight settings in the paper's Fig 17 legend order (ascending
    /// computational cost).
    pub fn legend_order() -> [Setting; 8] {
        [
            Setting { w: 2, a: 2, g: 2 },
            Setting { w: 2, a: 4, g: 2 },
            Setting { w: 4, a: 2, g: 2 },
            Setting { w: 2, a: 2, g: 4 },
            Setting { w: 4, a: 4, g: 2 },
            Setting { w: 2, a: 4, g: 4 },
            Setting { w: 4, a: 2, g: 4 },
            Setting { w: 4, a: 4, g: 4 },
        ]
    }

    /// Relative per-iteration cost of a setting:
    /// `m_W·m_A + λ1·m_G·m_W + λ2·m_G·m_A` with `λ1 = 1.5, λ2 = 1.25`.
    ///
    /// The three GEMMs contribute `m_W·m_A` (forward), `m_G·m_W` (∇A) and
    /// `m_G·m_A` (∇W) chunk passes; the gradient terms carry extra weight
    /// because ∇O is converted with stochastic rounding and read by both
    /// backward GEMMs ("gradients are used multiple times during the
    /// backward pass", Section VI-A), and the ∇A GEMM sits on the
    /// inter-layer critical path. This reproduces the paper's published
    /// order exactly (see `legend_order_is_cost_sorted`).
    pub fn cost(&self) -> f64 {
        let (w, a, g) = (self.w as f64, self.a as f64, self.g as f64);
        w * a + 1.5 * g * w + 1.25 * g * a
    }

    /// Index of this setting within the legend order.
    ///
    /// # Panics
    ///
    /// Panics if the widths are not each 2 or 4.
    pub fn legend_index(&self) -> usize {
        Setting::legend_order()
            .iter()
            .position(|s| s == self)
            .expect("setting widths must each be 2 or 4")
    }
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.w, self.a, self.g)
    }
}

/// A recorded history of per-layer settings over training (Fig 17).
#[derive(Debug, Clone, Default)]
pub struct PrecisionTrace {
    /// Layer labels in execution order.
    pub layer_labels: Vec<String>,
    /// `(iteration, settings-per-layer)` samples.
    pub samples: Vec<(usize, Vec<Setting>)>,
}

impl PrecisionTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PrecisionTrace::default()
    }

    /// Records one iteration's settings.
    pub fn record(&mut self, iter: usize, settings: Vec<Setting>) {
        self.samples.push((iter, settings));
    }

    /// Number of layers traced.
    pub fn layer_count(&self) -> usize {
        self.samples.first().map(|(_, s)| s.len()).unwrap_or(0)
    }

    /// Mean legend index per layer over a window of iterations — the
    /// summary statistic showing precision growth over depth/time.
    pub fn mean_legend_index(&self, layer: usize, from_iter: usize, to_iter: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for (it, settings) in &self.samples {
            if *it >= from_iter && *it < to_iter {
                sum += settings[layer].legend_index() as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Renders an ASCII heat map: one row per layer (deepest at top, as in
    /// Fig 17), one column per sampled iteration bucket; cells show the
    /// legend index 0–7.
    pub fn render_ascii(&self, buckets: usize) -> String {
        if self.samples.is_empty() || buckets == 0 {
            return String::from("(empty trace)\n");
        }
        let layers = self.layer_count();
        let max_iter = self.samples.last().expect("non-empty").0 + 1;
        let mut out = String::new();
        for layer in (0..layers).rev() {
            let label = self
                .layer_labels
                .get(layer)
                .cloned()
                .unwrap_or_else(|| format!("layer {layer}"));
            out.push_str(&format!("{label:>20} |"));
            for b in 0..buckets {
                let from = b * max_iter / buckets;
                let to = ((b + 1) * max_iter / buckets).max(from + 1);
                let mean = self.mean_legend_index(layer, from, to);
                out.push_str(&format!("{}", mean.round() as usize));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_order_is_cost_sorted() {
        // The paper's Fig 17 legend orders settings by computational cost:
        // (2,2,2) < (2,4,2) < (4,2,2) < (2,2,4) < (4,4,2) < (2,4,4)
        // < (4,2,4) < (4,4,4). Our cost model must reproduce it strictly.
        let order = Setting::legend_order();
        for w in order.windows(2) {
            assert!(
                w[0].cost() < w[1].cost(),
                "{} (cost {}) !< {} (cost {})",
                w[0],
                w[0].cost(),
                w[1],
                w[1].cost()
            );
        }
    }

    #[test]
    fn legend_index_roundtrip() {
        for (i, s) in Setting::legend_order().iter().enumerate() {
            assert_eq!(s.legend_index(), i);
        }
    }

    #[test]
    fn trace_statistics() {
        let mut t = PrecisionTrace::new();
        t.layer_labels = vec!["l0".into(), "l1".into()];
        let low = Setting { w: 2, a: 2, g: 2 };
        let high = Setting { w: 4, a: 4, g: 4 };
        for it in 0..10 {
            let s = if it < 5 { low } else { high };
            t.record(it, vec![low, s]);
        }
        assert_eq!(t.layer_count(), 2);
        assert_eq!(t.mean_legend_index(0, 0, 10), 0.0);
        assert_eq!(t.mean_legend_index(1, 5, 10), 7.0);
        let ascii = t.render_ascii(2);
        assert!(ascii.contains("l1"));
        // Deepest layer (l1) rendered first.
        let first_line = ascii.lines().next().unwrap();
        assert!(first_line.contains("l1"));
    }
}
