//! The FAST-Adaptive precision controller — paper Algorithm 1.
//!
//! Before every iteration, for every GEMM layer `l` and every tensor
//! `X ∈ [A_l, W_l, G_l]`, the controller evaluates the relative improvement
//! `r(X)` (Eq. 2) of the 4-bit over the 2-bit mantissa and compares it to
//! the threshold `ε(l, i)` (Eq. 1): `r(X) < ε` keeps the cheap 2-bit
//! mantissa, otherwise the tensor is promoted to 4 bits. Activations and
//! gradients are judged from the previous iteration's tensors (the freshest
//! available before the pass runs).

use crate::threshold::EpsilonSchedule;
use crate::trace::{PrecisionTrace, Setting};
use fast_bfp::relative_improvement;
use fast_nn::{LayerPrecision, Sequential, StateVisitor, TrainHook, VisitState};
use fast_telemetry::{Gauge, Registry};

/// Paper Algorithm 1, packaged as a [`TrainHook`].
///
/// Hook it into a training loop (e.g. `fast_nn::Trainer`) and it rewrites
/// every layer's `(W, A, G)` mantissa widths before each iteration:
///
/// ```
/// use fast_core::{EpsilonSchedule, FastController};
/// use fast_nn::models::mlp;
/// use fast_nn::{collect_precisions, TrainHook};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut model = mlp(&[8, 16, 4], &mut rng);
/// let mut ctl = FastController::new(100, EpsilonSchedule::paper_default());
/// ctl.before_iteration(0, &mut model);
/// // Every GEMM layer now carries a 2- or 4-bit BFP assignment…
/// assert_eq!(ctl.settings().len(), 2);
/// // …and the model's precisions match what the controller recorded.
/// assert_eq!(collect_precisions(&mut model).len(), 2);
/// ```
#[derive(Debug)]
pub struct FastController {
    schedule: EpsilonSchedule,
    total_iters: usize,
    group_size: usize,
    /// Re-evaluate every `stride` iterations (1 = every iteration as in the
    /// paper; larger strides amortize controller cost in experiments).
    stride: usize,
    /// The recorded precision history (Fig 17).
    pub trace: PrecisionTrace,
    current: Vec<Setting>,
    /// Cached `(W, A, G)` gauge handles per layer, registered lazily on the
    /// first evaluation (labels come from the layers themselves). Publishing
    /// makes the Fig 17 schedule observable live via
    /// `fast_precision_bits{layer, tensor}` instead of only post-hoc from
    /// the trace.
    gauges: Vec<[Gauge; 3]>,
}

impl FastController {
    /// Creates a controller with the paper's threshold schedule.
    pub fn new(total_iters: usize, schedule: EpsilonSchedule) -> Self {
        assert!(total_iters > 0);
        FastController {
            schedule,
            total_iters,
            group_size: 16,
            stride: 1,
            trace: PrecisionTrace::new(),
            current: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// Sets the re-evaluation stride (1 = every iteration).
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride >= 1);
        self.stride = stride;
        self
    }

    /// The current per-layer settings.
    pub fn settings(&self) -> &[Setting] {
        &self.current
    }

    fn decide(&self, r: f32, eps: f32) -> u32 {
        if r < eps {
            2
        } else {
            4
        }
    }

    /// Publishes the live per-layer `(W, A, G)` mantissa widths as labeled
    /// gauges on the global registry. Layer labels alone are not unique
    /// (two `dense(256->256)` layers collide), so the series key is
    /// `"<index>:<label>"`.
    fn publish_precision_gauges(&mut self) {
        if self.gauges.len() != self.current.len() {
            self.gauges = (0..self.current.len())
                .map(|i| {
                    let label = self
                        .trace
                        .layer_labels
                        .get(i)
                        .map(String::as_str)
                        .unwrap_or("");
                    let layer = format!("{i}:{label}");
                    ["w", "a", "g"].map(|tensor| {
                        Registry::global().gauge(
                            "fast_precision_bits",
                            "live FAST-Adaptive mantissa width for a layer tensor (W/A/G)",
                            &[("layer", layer.as_str()), ("tensor", tensor)],
                        )
                    })
                })
                .collect();
        }
        for (gauges, s) in self.gauges.iter().zip(&self.current) {
            gauges[0].set(s.w as f64);
            gauges[1].set(s.a as f64);
            gauges[2].set(s.g as f64);
        }
    }
}

/// The controller's trajectory state, so a resumed run makes identical
/// precision decisions: the currently-applied per-layer settings (which
/// [`FastController::with_stride`] holds between re-evaluations) and the
/// recorded trace (so the Fig 17 history continues seamlessly). Pass the
/// controller as the `hook_state` of `fast_nn::Trainer::{save_checkpoint,
/// resume}` — the schedule, iteration budget and stride are configuration,
/// rebuilt by constructing the controller the same way.
impl VisitState for FastController {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let mut current: Vec<u32> = self.current.iter().flat_map(|s| [s.w, s.a, s.g]).collect();
        v.u32s("current", &mut current);
        if current.len().is_multiple_of(3) {
            self.current = current
                .chunks_exact(3)
                .map(|c| Setting {
                    w: c[0],
                    a: c[1],
                    g: c[2],
                })
                .collect();
        } else {
            v.invalid(
                "current",
                format!("{} values do not form (w, a, g) triples", current.len()),
            );
        }
        let mut trace = self.trace.to_wire();
        v.bytes("trace", &mut trace);
        match PrecisionTrace::from_wire(&trace) {
            Ok(t) => self.trace = t,
            Err(why) => v.invalid("trace", why),
        }
    }
}

impl TrainHook for FastController {
    /// Algorithm 1 judges `A` and `G` from the previous iteration's
    /// tensors, so layers must keep their sensitivity caches.
    fn wants_sensitivity(&self) -> bool {
        true
    }

    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        use fast_nn::Layer;
        if !iter.is_multiple_of(self.stride) && !self.current.is_empty() {
            // Keep current settings; still record for the trace.
            self.trace.record(iter, self.current.clone());
            return;
        }
        // Count layers first (Algorithm 1 needs L).
        let total_layers = fast_nn::quant_layer_count(model).max(1);
        let mut settings = Vec::with_capacity(total_layers);
        let mut labels = Vec::with_capacity(total_layers);
        let mut layer_idx = 0usize;
        let schedule = self.schedule;
        let total_iters = self.total_iters;
        let g = self.group_size;
        model.visit_quant(&mut |q| {
            let eps = schedule.epsilon(layer_idx, total_layers, iter, total_iters);
            let r_w = relative_improvement(q.weight().data(), g);
            let m_w = if r_w < eps { 2 } else { 4 };
            let m_a = match q.last_input() {
                Some(t) => self.decide(relative_improvement(t.data(), g), eps),
                None => 2, // first iteration: start cheap (Fig 17 starts at (2,2,2))
            };
            let m_g = match q.last_grad_output() {
                Some(t) => self.decide(relative_improvement(t.data(), g), eps),
                None => 2,
            };
            *q.precision_mut() = LayerPrecision::fast(m_w, m_a, m_g);
            settings.push(Setting {
                w: m_w,
                a: m_a,
                g: m_g,
            });
            labels.push(q.label());
            layer_idx += 1;
        });
        if self.trace.layer_labels.is_empty() {
            self.trace.layer_labels = labels;
        }
        self.trace.record(iter, settings.clone());
        self.current = settings;
        self.publish_precision_gauges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::models::mlp;
    use fast_nn::{softmax_cross_entropy, Layer, NumericFormat, Session, Sgd};
    use fast_tensor::Tensor;
    use rand::{Rng, SeedableRng};

    #[test]
    fn first_iteration_starts_low_for_a_and_g() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        let mut ctl = FastController::new(100, EpsilonSchedule::paper_default());
        ctl.before_iteration(0, &mut model);
        for s in ctl.settings() {
            assert_eq!(s.a, 2);
            assert_eq!(s.g, 2);
        }
        assert_eq!(ctl.settings().len(), 2);
    }

    #[test]
    fn applies_fast_bfp_formats_to_all_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        let mut ctl = FastController::new(10, EpsilonSchedule::paper_default());
        ctl.before_iteration(0, &mut model);
        model.visit_quant(&mut |q| {
            let p = q.precision();
            assert!(matches!(p.weights, NumericFormat::Bfp { .. }));
            assert!(matches!(p.gradients, NumericFormat::Bfp { .. }));
        });
    }

    #[test]
    fn threshold_collapse_forces_high_precision() {
        // With ε driven to −∞, every tensor with any fine structure gets 4
        // bits (r ≥ 0 ≥ ε is always "promote" once ε < 0).
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = mlp(&[8, 8, 4], &mut rng);
        let mut ctl = FastController::new(
            10,
            EpsilonSchedule {
                alpha: -1.0,
                beta: 0.0,
            },
        );
        ctl.before_iteration(0, &mut model);
        for s in ctl.settings() {
            assert_eq!(s.w, 4);
        }
    }

    #[test]
    fn precision_grows_over_training_on_a_real_loop() {
        // Integration: train a small MLP under the controller and check the
        // Fig 17 property — later iterations use costlier settings on
        // average.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut model = mlp(&[8, 32, 4], &mut rng);
        let mut session = Session::new(0);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let iters = 60;
        let mut ctl = FastController::new(iters, EpsilonSchedule::paper_default());
        let x = Tensor::from_vec(
            vec![16, 8],
            (0..128).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
        for it in 0..iters {
            ctl.before_iteration(it, &mut model);
            let out = model.forward(&x, &mut session);
            let (_, grad) = softmax_cross_entropy(&out, &labels);
            model.backward(&grad, &mut session);
            opt.step(&mut model);
        }
        let early: f64 = (0..2)
            .map(|l| ctl.trace.mean_legend_index(l, 0, iters / 3))
            .sum();
        let late: f64 = (0..2)
            .map(|l| ctl.trace.mean_legend_index(l, 2 * iters / 3, iters))
            .sum();
        assert!(
            late >= early,
            "precision should not decrease over training: early {early}, late {late}"
        );
    }

    #[test]
    fn controller_state_roundtrips_through_the_visitor() {
        use fast_ckpt::{capture_state, restore_state};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut model = mlp(&[4, 8, 2], &mut rng);
        let mut ctl = FastController::new(20, EpsilonSchedule::paper_default()).with_stride(5);
        ctl.before_iteration(0, &mut model);
        ctl.before_iteration(1, &mut model);
        let dict = capture_state(&mut ctl);
        let mut resumed = FastController::new(20, EpsilonSchedule::paper_default()).with_stride(5);
        restore_state(&mut resumed, &dict).unwrap();
        assert_eq!(resumed.settings(), ctl.settings());
        assert_eq!(resumed.trace.samples, ctl.trace.samples);
        assert_eq!(resumed.trace.layer_labels, ctl.trace.layer_labels);
        // The stride logic keeps held settings identical after resume.
        ctl.before_iteration(2, &mut model);
        resumed.before_iteration(2, &mut model);
        assert_eq!(resumed.settings(), ctl.settings());
    }

    #[test]
    fn stride_holds_settings_between_reevaluations() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = mlp(&[4, 8, 2], &mut rng);
        let mut ctl = FastController::new(10, EpsilonSchedule::paper_default()).with_stride(5);
        ctl.before_iteration(0, &mut model);
        let s0 = ctl.settings().to_vec();
        ctl.before_iteration(1, &mut model);
        assert_eq!(ctl.settings(), s0.as_slice());
        assert_eq!(ctl.trace.samples.len(), 2);
    }
}
