//! Static precision schedules — the four comparison schemes of paper Fig 9
//! (Temporal/Layerwise × Low-to-High/High-to-Low) and fixed-format
//! baselines.

use fast_nn::{set_uniform_precision, LayerPrecision, Sequential, TrainHook};

/// Applies one fixed format to every layer for the whole run.
#[derive(Debug, Clone, Copy)]
pub struct FixedPolicy {
    /// The format assignment.
    pub precision: LayerPrecision,
}

impl TrainHook for FixedPolicy {
    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        if iter == 0 {
            set_uniform_precision(model, self.precision);
        }
    }
}

/// Switches the whole network's precision at a given iteration (paper
/// Fig 9 left: Temporal Low-to-High vs High-to-Low).
#[derive(Debug, Clone, Copy)]
pub struct TemporalPolicy {
    /// Format for iterations `< switch_iter`.
    pub first: LayerPrecision,
    /// Format for iterations `>= switch_iter`.
    pub second: LayerPrecision,
    /// The switch point.
    pub switch_iter: usize,
}

impl TemporalPolicy {
    /// The paper's Temporal Low-to-High: BFP `m=3, g=16` first half, FP32
    /// second half.
    pub fn low_to_high(total_iters: usize) -> Self {
        TemporalPolicy {
            first: LayerPrecision::bfp_fixed(3),
            second: LayerPrecision::fp32(),
            switch_iter: total_iters / 2,
        }
    }

    /// The paper's Temporal High-to-Low: FP32 first half, BFP second half.
    pub fn high_to_low(total_iters: usize) -> Self {
        TemporalPolicy {
            first: LayerPrecision::fp32(),
            second: LayerPrecision::bfp_fixed(3),
            switch_iter: total_iters / 2,
        }
    }
}

impl TrainHook for TemporalPolicy {
    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        if iter == 0 || iter == self.switch_iter {
            let p = if iter < self.switch_iter {
                self.first
            } else {
                self.second
            };
            set_uniform_precision(model, p);
        }
    }
}

/// Assigns one format to the first fraction of layers and another to the
/// rest (paper Fig 9 right: Layerwise Low-to-High vs High-to-Low).
#[derive(Debug, Clone, Copy)]
pub struct LayerwisePolicy {
    /// Format for layers in the first `boundary` fraction of depth.
    pub early: LayerPrecision,
    /// Format for the remaining layers.
    pub late: LayerPrecision,
    /// Depth fraction in `[0, 1]` where the switch happens.
    pub boundary: f32,
}

impl LayerwisePolicy {
    /// Paper's Layerwise Low-to-High: BFP `m=3` for the first half of
    /// layers, FP32 for the second half.
    pub fn low_to_high() -> Self {
        LayerwisePolicy {
            early: LayerPrecision::bfp_fixed(3),
            late: LayerPrecision::fp32(),
            boundary: 0.5,
        }
    }

    /// Paper's Layerwise High-to-Low.
    pub fn high_to_low() -> Self {
        LayerwisePolicy {
            early: LayerPrecision::fp32(),
            late: LayerPrecision::bfp_fixed(3),
            boundary: 0.5,
        }
    }
}

impl TrainHook for LayerwisePolicy {
    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        use fast_nn::Layer;
        if iter != 0 {
            return;
        }
        let total = fast_nn::quant_layer_count(model).max(1);
        let cut = (self.boundary * total as f32).round() as usize;
        let mut idx = 0usize;
        model.visit_quant(&mut |q| {
            *q.precision_mut() = if idx < cut { self.early } else { self.late };
            idx += 1;
        });
    }
}

/// Chains several hooks, firing them in order.
#[derive(Default)]
pub struct HookChain<'a> {
    hooks: Vec<&'a mut dyn TrainHook>,
}

impl<'a> HookChain<'a> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        HookChain { hooks: Vec::new() }
    }

    /// Appends a hook.
    pub fn push(mut self, hook: &'a mut dyn TrainHook) -> Self {
        self.hooks.push(hook);
        self
    }
}

impl TrainHook for HookChain<'_> {
    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        for h in self.hooks.iter_mut() {
            h.before_iteration(iter, model);
        }
    }

    fn after_backward(&mut self, iter: usize, model: &mut Sequential) {
        for h in self.hooks.iter_mut() {
            h.after_backward(iter, model);
        }
    }

    /// A chain needs sensitivity tensors if any member does (e.g. a
    /// [`FastController`](crate::FastController) chained with a cost meter).
    fn wants_sensitivity(&self) -> bool {
        self.hooks.iter().any(|h| h.wants_sensitivity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_nn::models::mlp;
    use fast_nn::{collect_precisions, NumericFormat};
    use rand::SeedableRng;

    #[test]
    fn temporal_policy_switches_at_midpoint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = mlp(&[4, 8, 2], &mut rng);
        let mut p = TemporalPolicy::low_to_high(10);
        p.before_iteration(0, &mut model);
        let first = collect_precisions(&mut model);
        assert!(matches!(first[0].1.weights, NumericFormat::Bfp { .. }));
        p.before_iteration(5, &mut model);
        let second = collect_precisions(&mut model);
        assert!(matches!(second[0].1.weights, NumericFormat::Fp32));
    }

    #[test]
    fn layerwise_policy_splits_by_depth() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = mlp(&[4, 8, 8, 8, 2], &mut rng); // 4 dense layers
        let mut p = LayerwisePolicy::low_to_high();
        p.before_iteration(0, &mut model);
        let ps = collect_precisions(&mut model);
        assert_eq!(ps.len(), 4);
        assert!(matches!(ps[0].1.weights, NumericFormat::Bfp { .. }));
        assert!(matches!(ps[1].1.weights, NumericFormat::Bfp { .. }));
        assert!(matches!(ps[2].1.weights, NumericFormat::Fp32));
        assert!(matches!(ps[3].1.weights, NumericFormat::Fp32));
    }

    #[test]
    fn hook_chain_forwards_sensitivity_demand() {
        struct Plain;
        impl TrainHook for Plain {}
        struct Needy;
        impl TrainHook for Needy {
            fn wants_sensitivity(&self) -> bool {
                true
            }
        }
        let (mut a, mut b) = (Plain, Plain);
        assert!(!HookChain::new()
            .push(&mut a)
            .push(&mut b)
            .wants_sensitivity());
        let (mut a, mut needy) = (Plain, Needy);
        assert!(
            HookChain::new()
                .push(&mut a)
                .push(&mut needy)
                .wants_sensitivity(),
            "a chained FastController must keep sensitivity caching on"
        );
        // The real case: a FastController inside a chain.
        let mut ctl = crate::FastController::new(10, crate::EpsilonSchedule::paper_default());
        assert!(HookChain::new().push(&mut ctl).wants_sensitivity());
    }

    #[test]
    fn hook_chain_fires_in_order() {
        struct Tag(
            &'static str,
            std::rc::Rc<std::cell::RefCell<Vec<&'static str>>>,
        );
        impl TrainHook for Tag {
            fn before_iteration(&mut self, _i: usize, _m: &mut Sequential) {
                self.1.borrow_mut().push(self.0);
            }
        }
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut a = Tag("a", log.clone());
        let mut b = Tag("b", log.clone());
        let mut chain = HookChain::new().push(&mut a).push(&mut b);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = mlp(&[2, 2], &mut rng);
        chain.before_iteration(0, &mut model);
        assert_eq!(*log.borrow(), vec!["a", "b"]);
    }
}
