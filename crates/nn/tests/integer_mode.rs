//! Accuracy gates for the integer-domain qGEMM execution mode
//! (DESIGN.md §11).
//!
//! The replay path's contract is bit-identity with the quantize-copy
//! composition and is pinned by `tests/proptests.rs`. Integer mode trades
//! that bit-identity for speed: packed×packed GEMMs run i8×i8→i32 inner
//! products per group segment with one f32 scale multiply per segment, so
//! the only inexact steps are the cross-segment f32 adds. These tests pin
//! the resulting contract:
//!
//! * **Error bound** — against an f64 reference over the dequantized
//!   operands, integer-mode results stay within a few ULPs of the
//!   accumulated magnitude, for every orientation and every packable
//!   format in the zoo.
//! * **Never garbage** — operands the packer refuses (non-finite or
//!   subnormal values, mantissas wider than `i8`) fall back to the replay
//!   kernels *bitwise*; integer mode never invents bits for data it cannot
//!   represent.
//! * **Mode plumbing** — `FAST_QGEMM_MODE` selects the session default,
//!   per-layer overrides beat the session, and clearing an override
//!   restores replay bits exactly.
//! * **Training parity** — a small MLP trained end-to-end under integer
//!   mode reaches the same loss neighborhood as the replay run.

use fast_bfp::{BfpFormat, GroupAxis, RngBits, Rounding};
use fast_nn::models::mlp;
use fast_nn::qgemm::{execute_with, prepare, Orient};
use fast_nn::{
    set_exec_mode, set_uniform_precision, softmax_cross_entropy, ExecMode, Layer, LayerPrecision,
    NumericFormat, Session, Sgd,
};
use fast_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

/// The same 10-format zoo as `tests/proptests.rs`: borrow-through FP32,
/// scalar formats, packable BFP under every rounding mode, and
/// wide-mantissa BFP (dense fallback).
fn zoo_format(idx: usize) -> NumericFormat {
    match idx % 10 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::low()),
        4 => NumericFormat::bfp_nearest(BfpFormat::high()),
        5 => NumericFormat::bfp_stochastic(BfpFormat::high()),
        6 => NumericFormat::Bfp {
            format: BfpFormat::new(16, 3, 3).unwrap(),
            rounding: Rounding::Stochastic { noise_bits: 5 },
            windowed: true,
        },
        7 => NumericFormat::Bfp {
            format: BfpFormat::new(8, 7, 8).unwrap(),
            rounding: Rounding::Truncate,
            windowed: false,
        },
        8 => NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: Rounding::Nearest,
            windowed: true,
        },
    }
}

/// Random operand data, optionally salted with exact zeros (`special ≥ 1`)
/// or NaN / infinity / subnormal values (`special == 2`) that must force
/// the packed fast path's fallback.
fn operand_data(len: usize, seed: u64, special: usize) -> Vec<f32> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            if special >= 1 && i % 5 == 0 {
                0.0
            } else if special == 2 && i % 13 == 0 {
                f32::NAN
            } else if special == 2 && i % 11 == 0 {
                f32::INFINITY
            } else if special == 2 && i % 7 == 0 {
                1e-41 // subnormal
            } else {
                rng.gen_range(-4.0f32..4.0) * 2.0f32.powi(rng.gen_range(-10..4))
            }
        })
        .collect()
}

/// Shapes, reduction axes and orientation for one proptest case.
fn orient_case(
    orient_idx: usize,
    m: usize,
    k: usize,
    n: usize,
) -> ((usize, usize), (usize, usize), GroupAxis, GroupAxis, Orient) {
    match orient_idx {
        0 => (
            (m, k),
            (k, n),
            GroupAxis::AlongRow,
            GroupAxis::AlongCol,
            Orient::Nn,
        ),
        1 => (
            (m, k),
            (n, k),
            GroupAxis::AlongRow,
            GroupAxis::AlongRow,
            Orient::Nt,
        ),
        2 => (
            (k, m),
            (k, n),
            GroupAxis::AlongCol,
            GroupAxis::AlongCol,
            Orient::Tn,
        ),
        _ => (
            (m, k),
            (n, k),
            GroupAxis::AlongRow,
            GroupAxis::AlongRow,
            Orient::Bt,
        ),
    }
}

/// f64 reference product of the (already quantized) operands, plus the
/// per-element accumulated magnitude `Σ|a·b|` that scales the error bound.
fn reference_f64(
    aq: &Tensor,
    bq: &Tensor,
    orient: Orient,
    m: usize,
    k: usize,
    n: usize,
) -> (Vec<f64>, Vec<f64>) {
    let a = aq.data();
    let b = bq.data();
    let at = |i: usize, p: usize| match orient {
        Orient::Tn => a[p * m + i] as f64, // A is (k, m)
        _ => a[i * k + p] as f64,          // A is (m, k)
    };
    let bt = |p: usize, j: usize| match orient {
        Orient::Nn | Orient::Tn => b[p * n + j] as f64, // B is (k, n)
        _ => b[j * k + p] as f64,                       // B is (n, k), reduced along rows
    };
    let mut want = vec![0.0f64; m * n];
    let mut mag = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                let prod = at(i, p) * bt(p, j);
                want[i * n + j] += prod;
                mag[i * n + j] += prod.abs();
            }
        }
    }
    (want, mag)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// **The integer-mode accuracy gate**: for every orientation and every
    /// format pair in the zoo, integer-mode results stay within a
    /// magnitude-scaled bound of the f64 reference over the dequantized
    /// operands. The bound (`64·ε·Σ|a·b|`) is what ≤ k/segment-count f32
    /// additions can drift; a kernel that dropped a segment, mis-scaled a
    /// group or overflowed i32 fails it by orders of magnitude.
    #[test]
    fn integer_mode_stays_within_float_error_of_reference(
        m in 1usize..9,
        k in 1usize..70,
        n in 1usize..40,
        fa_idx in 0usize..10,
        fb_idx in 0usize..10,
        orient_idx in 0usize..4,
        special in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let (fa, fb) = (zoo_format(fa_idx), zoo_format(fb_idx));
        let (a_shape, b_shape, a_axis, b_axis, orient) = orient_case(orient_idx, m, k, n);
        let a = Tensor::from_vec(
            vec![a_shape.0, a_shape.1],
            operand_data(a_shape.0 * a_shape.1, seed, special),
        );
        let b = Tensor::from_vec(
            vec![b_shape.0, b_shape.1],
            operand_data(b_shape.0 * b_shape.1, seed ^ 0x9E37, special),
        );

        // Quantized f64 reference on the same bit stream `prepare` consumes.
        let mut bits = RngBits(rand::rngs::StdRng::seed_from_u64(seed));
        let aq = fa.quantize_copy(&a, a_axis, &mut bits);
        let bq = fb.quantize_copy(&b, b_axis, &mut bits);
        let (want, mag) = reference_f64(&aq, &bq, orient, m, k, n);

        // Pin the LFSR noise source: the f64 reference above quantized on a
        // sequential bit stream, which the FAST_SR_MODE=counter CI leg would
        // otherwise swap out from under it.
        let mut session = Session::new(seed);
        session.exec_mode = ExecMode::Integer;
        session.sr_mode = fast_bfp::SrMode::Lfsr;
        let ap = prepare(&mut session, &a, fa, a_axis);
        let bp = prepare(&mut session, &b, fb, b_axis);
        let got = execute_with(&mut session, ExecMode::Integer, orient, &ap, &bp);

        prop_assert_eq!(got.shape(), &[m, n]);
        for (idx, &g) in got.data().iter().enumerate() {
            let tol = 64.0 * f32::EPSILON as f64 * mag[idx] + 1e-30;
            prop_assert!(
                ((g as f64) - want[idx]).abs() <= tol,
                "elem {}: {} vs {} (tol {}, orient {:?}, fa {}, fb {})",
                idx, g, want[idx], tol, orient, fa.name(), fb.name()
            );
        }
    }

    /// **Never garbage**: operands the packer refuses — NaN / infinity /
    /// subnormal salt, or any non-packable format — make integer mode
    /// replay the plain kernels *bitwise*, NaN propagation included.
    #[test]
    fn unpackable_operands_fall_back_to_replay_bits(
        m in 1usize..8,
        k in 1usize..50,
        n in 1usize..30,
        fa_idx in 0usize..10,
        fb_idx in 0usize..10,
        orient_idx in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let (fa, fb) = (zoo_format(fa_idx), zoo_format(fb_idx));
        let (a_shape, b_shape, a_axis, b_axis, orient) = orient_case(orient_idx, m, k, n);
        let a = Tensor::from_vec(
            vec![a_shape.0, a_shape.1],
            operand_data(a_shape.0 * a_shape.1, seed, 2),
        );
        let b = Tensor::from_vec(
            vec![b_shape.0, b_shape.1],
            operand_data(b_shape.0 * b_shape.1, seed ^ 0x9E37, 2),
        );

        let run = |mode: ExecMode| {
            let mut s = Session::new(seed);
            s.exec_mode = mode;
            let ap = prepare(&mut s, &a, fa, a_axis);
            let bp = prepare(&mut s, &b, fb, b_axis);
            execute_with(&mut s, mode, orient, &ap, &bp)
        };
        let want = run(ExecMode::Replay);
        let got = run(ExecMode::Integer);
        prop_assert_eq!(got.shape(), want.shape());
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "elem {} differs: {} vs {} (orient {:?}, fa {}, fb {})",
                i, g, w, orient, fa.name(), fb.name()
            );
        }
    }
}

/// New sessions take their mode from `FAST_QGEMM_MODE` — the lever the CI
/// integer leg uses to force the entire gate suite through the integer
/// kernels without touching any test.
#[test]
fn default_session_mode_follows_env() {
    let want = match std::env::var("FAST_QGEMM_MODE").as_deref() {
        Ok("integer") => ExecMode::Integer,
        _ => ExecMode::Replay,
    };
    assert_eq!(Session::default_exec_mode(), want);
    assert_eq!(Session::new(0).exec_mode, want);
    assert_eq!(Session::eval(0).exec_mode, want);
    assert_eq!(Session::inference(0).exec_mode, want);
}

fn quantized_model(seed: u64) -> fast_nn::Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = mlp(&[40, 24, 4], &mut rng);
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    m
}

fn sample_batch() -> Tensor {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    Tensor::from_vec(
        vec![3, 40],
        (0..120).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
}

/// A per-layer `Some(mode)` override beats the session mode bitwise, and
/// clearing it (`None`) restores the session's behavior exactly.
#[test]
fn per_layer_override_beats_session_mode() {
    let x = sample_batch();

    // Ground truths: whole-session integer and whole-session replay runs.
    let mut s = Session::new(0);
    s.exec_mode = ExecMode::Integer;
    let want_integer = quantized_model(3).forward(&x, &mut s);
    let mut s = Session::new(0);
    s.exec_mode = ExecMode::Replay;
    let want_replay = quantized_model(3).forward(&x, &mut s);

    // Override on a replay session: every layer runs integer.
    let mut model = quantized_model(3);
    set_exec_mode(&mut model, Some(ExecMode::Integer));
    let mut s = Session::new(0);
    s.exec_mode = ExecMode::Replay;
    assert_eq!(model.forward(&x, &mut s), want_integer);

    // Clearing the override restores the session's replay bits.
    set_exec_mode(&mut model, None);
    let mut s = Session::new(0);
    s.exec_mode = ExecMode::Replay;
    assert_eq!(model.forward(&x, &mut s), want_replay);
}

/// Trains one small quantized MLP under each mode and compares the loss
/// trajectories: integer-domain execution must not change where training
/// lands (DESIGN.md §11's time-to-accuracy parity gate, scaled down to a
/// tier-1-sized problem).
#[test]
fn training_loss_parity_between_modes() {
    let train = |mode: ExecMode| {
        let mut model = quantized_model(7);
        let mut s = Session::new(11);
        s.exec_mode = mode;
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let x = sample_batch();
        let labels = [0usize, 1, 2];
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        for step in 0..40 {
            let y = model.forward(&x, &mut s);
            let (loss, grad) = softmax_cross_entropy(&y, &labels);
            if step == 0 {
                first = loss;
            }
            last = loss;
            let _ = model.backward(&grad, &mut s);
            opt.step(&mut model);
        }
        (first, last)
    };
    let (replay_first, replay_last) = train(ExecMode::Replay);
    let (integer_first, integer_last) = train(ExecMode::Integer);

    // Same model, same data: the initial losses agree to float noise and
    // both runs actually learn.
    assert!((replay_first - integer_first).abs() <= 1e-3 * replay_first.max(1.0));
    assert!(
        replay_last < 0.5 * replay_first,
        "replay run failed to learn: {replay_first} -> {replay_last}"
    );
    assert!(
        integer_last < 0.5 * integer_first,
        "integer run failed to learn: {integer_first} -> {integer_last}"
    );
    // And they land in the same loss neighborhood.
    let denom = replay_last.abs().max(1e-3);
    assert!(
        (replay_last - integer_last).abs() / denom < 0.25,
        "modes diverged: replay {replay_last} vs integer {integer_last}"
    );
}
