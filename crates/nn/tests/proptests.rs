//! Property-based tests for the training substrate: gradient correctness
//! under random shapes, quantization-noise boundedness, optimizer algebra.

use fast_nn::models::mlp;
use fast_nn::{
    mse_loss, set_uniform_precision, softmax_cross_entropy, Dense, Layer, LayerPrecision, Relu,
    Sequential, Session, Sgd,
};
use fast_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense gradient check under random shapes and inputs (FP32).
    #[test]
    fn dense_gradcheck(
        in_dim in 1usize..6,
        out_dim in 1usize..5,
        batch in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(in_dim, out_dim, true, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![batch, in_dim],
            (0..batch * in_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = layer.forward(&x, &mut s);
        let gout = Tensor::full(vec![batch, out_dim], 1.0);
        let gin = layer.backward(&gout, &mut s);
        let eps = 1e-3f32;
        for idx in 0..(batch * in_dim).min(4) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = layer.forward(&xm, &mut s).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            prop_assert!((num - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: {num} vs {}", gin.data()[idx]);
        }
    }

    /// Softmax CE loss is non-negative and its gradient rows sum to ~0.
    #[test]
    fn ce_gradient_rows_sum_to_zero(
        logits in prop::collection::vec(-5.0f32..5.0, 12),
        labels in prop::collection::vec(0usize..4, 3),
    ) {
        let t = Tensor::from_vec(vec![3, 4], logits);
        let (loss, grad) = softmax_cross_entropy(&t, &labels);
        prop_assert!(loss >= 0.0);
        for i in 0..3 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    /// MSE of identical tensors is zero with zero gradient.
    #[test]
    fn mse_identity(data in prop::collection::vec(-3.0f32..3.0, 8)) {
        let t = Tensor::from_vec(vec![2, 4], data);
        let (loss, grad) = mse_loss(&t, &t);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    /// Quantized forward output error is bounded relative to FP32 for
    /// HighBFP: the relative L1 distance stays under 25% on random MLPs.
    #[test]
    fn high_bfp_forward_stays_close(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![4, 8],
            (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let y_fp = model.forward(&x, &mut s);
        set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
        let y_q = model.forward(&x, &mut s);
        let num: f64 = y_fp.data().iter().zip(y_q.data())
            .map(|(a, b)| ((a - b) as f64).abs()).sum();
        let den: f64 = y_fp.data().iter().map(|&v| (v as f64).abs()).sum::<f64>().max(1e-6);
        prop_assert!(num / den < 0.25, "relative error {}", num / den);
    }

    /// SGD with zero gradients and zero weight decay is a no-op.
    #[test]
    fn sgd_identity_without_gradient(seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = Sequential::new()
            .push(Dense::new(3, 3, true, &mut rng))
            .push(Relu::new());
        let before: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.step(&mut model);
        let after: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        prop_assert_eq!(before, after);
    }

    /// Forward is deterministic for deterministic formats regardless of
    /// session seed.
    #[test]
    fn deterministic_formats_ignore_session_seed(
        seed_a in 0u64..50, seed_b in 50u64..100,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = mlp(&[4, 8, 2], &mut rng);
        set_uniform_precision(&mut model, LayerPrecision::bf16());
        let x = Tensor::full(vec![2, 4], 0.33);
        let mut sa = Session::new(seed_a);
        let mut sb = Session::new(seed_b);
        let ya = model.forward(&x, &mut sa);
        let yb = model.forward(&x, &mut sb);
        prop_assert_eq!(ya, yb);
    }
}

/// The format zoo the quantized-GEMM plan must be bit-faithful over:
/// borrow-through FP32, scalar formats (dense fallback), packable BFP
/// (`m ≤ 7`, every rounding mode, windowed and not), and wide-mantissa BFP
/// (dense fallback again).
fn zoo_format(idx: usize) -> NumericFormat {
    use fast_dnn_test_helpers::*;
    match idx % 10 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::low()),
        4 => NumericFormat::bfp_nearest(BfpFormat::high()),
        5 => NumericFormat::bfp_stochastic(BfpFormat::high()),
        6 => NumericFormat::Bfp {
            format: BfpFormat::new(16, 3, 3).unwrap(),
            rounding: Rounding::Stochastic { noise_bits: 5 },
            windowed: true,
        },
        7 => NumericFormat::Bfp {
            format: BfpFormat::new(8, 7, 8).unwrap(),
            rounding: Rounding::Truncate,
            windowed: false,
        },
        8 => NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: Rounding::Nearest,
            windowed: true,
        },
    }
}

/// Imports gathered for [`zoo_format`] without polluting the file head.
mod fast_dnn_test_helpers {
    pub use fast_bfp::{BfpFormat, Rounding};
    pub use fast_nn::NumericFormat;
}
use fast_bfp::{GroupAxis, RngBits};
use fast_nn::qgemm::{execute, prepare, Orient};
use fast_nn::NumericFormat;
use fast_tensor::{matmul, matmul_bt, matmul_nt, matmul_tn};

/// Random operand data, optionally salted with exact zeros (BFP operands
/// are sparse) or non-finite / subnormal values (which must force the
/// plan's dense fallback and still match bitwise).
fn operand_data(len: usize, seed: u64, special: usize) -> Vec<f32> {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| {
            if special >= 1 && i % 5 == 0 {
                0.0
            } else if special == 2 && i % 13 == 0 {
                f32::NAN
            } else if special == 2 && i % 11 == 0 {
                f32::INFINITY
            } else if special == 2 && i % 7 == 0 {
                1e-41 // subnormal
            } else {
                rng.gen_range(-4.0f32..4.0) * 2.0f32.powi(rng.gen_range(-10..4))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// **The tentpole invariant**: for every GEMM orientation, every format
    /// in the zoo (packed-BFP fast path and dense fallbacks alike), every
    /// rounding mode and operands including non-finite values, the shared
    /// plan (`prepare` + `execute`) is bit-identical to the historical
    /// `quantize_copy` + `matmul{,_nt,_tn,_bt}` composition — same result
    /// bits, same stochastic bit-stream consumption.
    #[test]
    fn qgemm_plan_matches_quantize_copy_composition_bitwise(
        m in 1usize..10,
        k in 1usize..70,
        n in 1usize..40,
        fa_idx in 0usize..10,
        fb_idx in 0usize..10,
        orient_idx in 0usize..4,
        special in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let (fa, fb) = (zoo_format(fa_idx), zoo_format(fb_idx));
        // Shapes and reduction axes per orientation.
        let (a_shape, b_shape, a_axis, b_axis, orient) = match orient_idx {
            0 => ((m, k), (k, n), GroupAxis::AlongRow, GroupAxis::AlongCol, Orient::Nn),
            1 => ((m, k), (n, k), GroupAxis::AlongRow, GroupAxis::AlongRow, Orient::Nt),
            2 => ((k, m), (k, n), GroupAxis::AlongCol, GroupAxis::AlongCol, Orient::Tn),
            _ => ((m, k), (n, k), GroupAxis::AlongRow, GroupAxis::AlongRow, Orient::Bt),
        };
        let a = Tensor::from_vec(
            vec![a_shape.0, a_shape.1],
            operand_data(a_shape.0 * a_shape.1, seed, special),
        );
        let b = Tensor::from_vec(
            vec![b_shape.0, b_shape.1],
            operand_data(b_shape.0 * b_shape.1, seed ^ 0x9E37, special),
        );

        // Reference: the historical composition on one bit stream.
        let mut bits = RngBits(rand::rngs::StdRng::seed_from_u64(seed));
        let aq = fa.quantize_copy(&a, a_axis, &mut bits);
        let bq = fb.quantize_copy(&b, b_axis, &mut bits);
        let want = match orient {
            Orient::Nn => matmul(&aq, &bq),
            Orient::Nt => matmul_nt(&aq, &bq),
            Orient::Tn => matmul_tn(&aq, &bq),
            Orient::Bt => matmul_bt(&aq, &bq),
        };

        // Plan: same seed drives the session bit source. Bit-identity is a
        // replay-mode guarantee, so pin the mode — the CI leg that exports
        // FAST_QGEMM_MODE=integer must not flip this invariant's subject
        // (integer-mode closeness has its own gate in tests/integer_mode.rs).
        // Likewise pin the LFSR noise source: the reference composition
        // consumes a sequential bit stream, which is exactly what the
        // FAST_SR_MODE=counter leg replaces (counter-mode equivalence has
        // its own gates in crates/bfp/tests/counter_sr.rs).
        let mut session = Session::new(seed);
        session.exec_mode = fast_tensor::ExecMode::Replay;
        session.sr_mode = fast_bfp::SrMode::Lfsr;
        let ap = prepare(&mut session, &a, fa, a_axis);
        let bp = prepare(&mut session, &b, fb, b_axis);
        let got = execute(&mut session, orient, &ap, &bp);

        prop_assert_eq!(got.shape(), want.shape());
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            prop_assert_eq!(
                g.to_bits(), w.to_bits(),
                "elem {} differs: {} vs {} (orient {:?}, fa {}, fb {})",
                i, g, w, orient, fa.name(), fb.name()
            );
        }
        // The plan metered exactly one GEMM of the composed shape.
        prop_assert_eq!(session.plan_stats.gemms, 1);
        prop_assert_eq!(session.plan_stats.macs, (m * k * n) as u64);
    }

    /// Training a whole quantized layer stack through the plan consumes the
    /// session bit stream exactly like the historical pipeline: two runs
    /// from one seed are bit-identical even under stochastic rounding.
    #[test]
    fn sr_training_step_is_reproducible_through_the_plan(seed in 0u64..300) {
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut model = mlp(&[6, 12, 3], &mut rng);
            set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(2));
            let mut s = Session::new(seed);
            use rand::Rng;
            let x = Tensor::from_vec(
                vec![3, 6],
                (0..18).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            );
            let y = model.forward(&x, &mut s);
            let (loss, grad) = softmax_cross_entropy(&y, &[0, 1, 2]);
            let gin = model.backward(&grad, &mut s);
            (loss, y, gin)
        };
        let (la, ya, ga) = run(seed);
        let (lb, yb, gb) = run(seed);
        prop_assert_eq!(la.to_bits(), lb.to_bits());
        prop_assert_eq!(ya, yb);
        prop_assert_eq!(ga, gb);
    }
}
