//! Property-based tests for the training substrate: gradient correctness
//! under random shapes, quantization-noise boundedness, optimizer algebra.

use fast_nn::models::mlp;
use fast_nn::{
    mse_loss, set_uniform_precision, softmax_cross_entropy, Dense, Layer, LayerPrecision, Relu,
    Sequential, Session, Sgd,
};
use fast_tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense gradient check under random shapes and inputs (FP32).
    #[test]
    fn dense_gradcheck(
        in_dim in 1usize..6,
        out_dim in 1usize..5,
        batch in 1usize..4,
        seed in 0u64..500,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(in_dim, out_dim, true, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![batch, in_dim],
            (0..batch * in_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = layer.forward(&x, &mut s);
        let gout = Tensor::full(vec![batch, out_dim], 1.0);
        let gin = layer.backward(&gout, &mut s);
        let eps = 1e-3f32;
        for idx in 0..(batch * in_dim).min(4) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = layer.forward(&xm, &mut s).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            prop_assert!((num - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: {num} vs {}", gin.data()[idx]);
        }
    }

    /// Softmax CE loss is non-negative and its gradient rows sum to ~0.
    #[test]
    fn ce_gradient_rows_sum_to_zero(
        logits in prop::collection::vec(-5.0f32..5.0, 12),
        labels in prop::collection::vec(0usize..4, 3),
    ) {
        let t = Tensor::from_vec(vec![3, 4], logits);
        let (loss, grad) = softmax_cross_entropy(&t, &labels);
        prop_assert!(loss >= 0.0);
        for i in 0..3 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    /// MSE of identical tensors is zero with zero gradient.
    #[test]
    fn mse_identity(data in prop::collection::vec(-3.0f32..3.0, 8)) {
        let t = Tensor::from_vec(vec![2, 4], data);
        let (loss, grad) = mse_loss(&t, &t);
        prop_assert_eq!(loss, 0.0);
        prop_assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    /// Quantized forward output error is bounded relative to FP32 for
    /// HighBFP: the relative L1 distance stays under 25% on random MLPs.
    #[test]
    fn high_bfp_forward_stays_close(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = mlp(&[8, 16, 4], &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![4, 8],
            (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let y_fp = model.forward(&x, &mut s);
        set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
        let y_q = model.forward(&x, &mut s);
        let num: f64 = y_fp.data().iter().zip(y_q.data())
            .map(|(a, b)| ((a - b) as f64).abs()).sum();
        let den: f64 = y_fp.data().iter().map(|&v| (v as f64).abs()).sum::<f64>().max(1e-6);
        prop_assert!(num / den < 0.25, "relative error {}", num / den);
    }

    /// SGD with zero gradients and zero weight decay is a no-op.
    #[test]
    fn sgd_identity_without_gradient(seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut model = Sequential::new()
            .push(Dense::new(3, 3, true, &mut rng))
            .push(Relu::new());
        let before: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        opt.step(&mut model);
        let after: Vec<f32> = {
            let mut v = Vec::new();
            model.visit_params(&mut |p| v.extend_from_slice(p.value.data()));
            v
        };
        prop_assert_eq!(before, after);
    }

    /// Forward is deterministic for deterministic formats regardless of
    /// session seed.
    #[test]
    fn deterministic_formats_ignore_session_seed(
        seed_a in 0u64..50, seed_b in 50u64..100,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut model = mlp(&[4, 8, 2], &mut rng);
        set_uniform_precision(&mut model, LayerPrecision::bf16());
        let x = Tensor::full(vec![2, 4], 0.33);
        let mut sa = Session::new(seed_a);
        let mut sb = Session::new(seed_b);
        let ya = model.forward(&x, &mut sa);
        let yb = model.forward(&x, &mut sb);
        prop_assert_eq!(ya, yb);
    }
}
