//! Golden pins for the model zoo: parameter counts, quantized-layer counts
//! and output shapes for every constructor in `crates/nn/src/models/`.
//!
//! The numbers are structural fingerprints — a silent change to a stem
//! width, a lost projection shortcut, or an extra bias shows up here as a
//! pin mismatch long before it would surface as an accuracy anomaly. Each
//! model is pinned at two scales: the CI-scale config the lifecycle
//! harness trains (see `fast_harness::Workload`), and a larger
//! paper-shaped config.

use fast_nn::models::{
    mlp, mobilenet_lite, resnet_lite, tiny_transformer, tiny_yolo, vgg_lite, MobileNetConfig,
    ResNetConfig, TransformerConfig, VggConfig, YoloConfig,
};
use fast_nn::{parameter_count, quant_layer_count, Layer, Sequential, Session};
use fast_tensor::Tensor;
use rand::SeedableRng;

/// Asserts the three structural pins for one constructed model.
fn pin(
    name: &str,
    model: &mut Sequential,
    input_shape: Vec<usize>,
    want_params: usize,
    want_quant: usize,
    want_out: &[usize],
) {
    assert_eq!(
        parameter_count(model),
        want_params,
        "{name}: parameter count drifted"
    );
    assert_eq!(
        quant_layer_count(model),
        want_quant,
        "{name}: quantized-layer count drifted"
    );
    let y = model.forward(&Tensor::zeros(input_shape), &mut Session::eval(0));
    assert_eq!(y.shape(), want_out, "{name}: output shape drifted");
    assert!(
        y.data().iter().all(|v| v.is_finite()),
        "{name}: fresh-init forward must be finite"
    );
}

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0)
}

#[test]
fn mlp_pins() {
    // (6·16 + 16) + (16·3 + 3) = 163 across 2 dense layers.
    pin(
        "mlp",
        &mut mlp(&[6, 16, 3], &mut rng()),
        vec![2, 6],
        163,
        2,
        &[2, 3],
    );
}

#[test]
fn resnet_lite_pins() {
    let mut tiny = resnet_lite(
        ResNetConfig {
            in_channels: 3,
            stem_channels: 4,
            blocks_per_stage: [1, 1, 1],
            num_classes: 3,
            symmetric: false,
        },
        &mut rng(),
    );
    pin(
        "resnet_tiny",
        &mut tiny,
        vec![2, 3, 8, 8],
        5_095,
        10,
        &[2, 3],
    );
    let mut paper = resnet_lite(ResNetConfig::resnet20(8, 10), &mut rng());
    // 1 stem + 9 blocks × 2 convs + 2 projection shortcuts + 1 dense = 22.
    pin(
        "resnet20",
        &mut paper,
        vec![2, 3, 16, 16],
        68_786,
        22,
        &[2, 10],
    );
}

#[test]
fn mobilenet_lite_pins() {
    let mut tiny = mobilenet_lite(
        MobileNetConfig {
            in_channels: 3,
            stem_channels: 4,
            blocks: 2,
            num_classes: 3,
        },
        &mut rng(),
    );
    pin(
        "mobilenet_tiny",
        &mut tiny,
        vec![2, 3, 8, 8],
        303,
        6,
        &[2, 3],
    );
    let mut paper = mobilenet_lite(
        MobileNetConfig {
            in_channels: 3,
            stem_channels: 8,
            blocks: 4,
            num_classes: 10,
        },
        &mut rng(),
    );
    pin(
        "mobilenet",
        &mut paper,
        vec![2, 3, 16, 16],
        2_194,
        10,
        &[2, 10],
    );
}

#[test]
fn vgg_lite_pins() {
    let mut tiny = vgg_lite(
        VggConfig {
            in_channels: 3,
            image_size: 8,
            base_channels: 4,
            fc_dim: 16,
            num_classes: 3,
        },
        &mut rng(),
    );
    pin("vgg_tiny", &mut tiny, vec![2, 3, 8, 8], 5_007, 8, &[2, 3]);
    let mut paper = vgg_lite(
        VggConfig {
            in_channels: 3,
            image_size: 16,
            base_channels: 8,
            fc_dim: 32,
            num_classes: 10,
        },
        &mut rng(),
    );
    pin("vgg", &mut paper, vec![2, 3, 16, 16], 22_754, 8, &[2, 10]);
}

#[test]
fn tiny_transformer_pins() {
    let mut tiny = tiny_transformer(
        TransformerConfig {
            vocab: 8,
            d_model: 16,
            heads: 2,
            ff_dim: 32,
            layers: 1,
            seq_len: 4,
        },
        &mut rng(),
    );
    // Tokens go in as (batch, seq); logits come out per token row.
    pin("transformer_tiny", &mut tiny, vec![2, 4], 2_584, 7, &[8, 8]);
    let mut paper = tiny_transformer(
        TransformerConfig {
            vocab: 16,
            d_model: 32,
            heads: 4,
            ff_dim: 64,
            layers: 2,
            seq_len: 6,
        },
        &mut rng(),
    );
    pin("transformer", &mut paper, vec![2, 6], 18_384, 13, &[12, 16]);
}

#[test]
fn tiny_yolo_pins() {
    let mut tiny = tiny_yolo(
        YoloConfig {
            in_channels: 3,
            image_size: 8,
            grid: 2,
            num_classes: 2,
            base_channels: 4,
        },
        &mut rng(),
    );
    // Head emits (batch, 5 + classes, S, S).
    pin(
        "yolo_tiny",
        &mut tiny,
        vec![2, 3, 8, 8],
        1_075,
        4,
        &[2, 7, 2, 2],
    );
    let mut paper = tiny_yolo(
        YoloConfig {
            in_channels: 3,
            image_size: 16,
            grid: 4,
            num_classes: 3,
            base_channels: 8,
        },
        &mut rng(),
    );
    pin(
        "yolo",
        &mut paper,
        vec![2, 3, 16, 16],
        3_888,
        4,
        &[2, 8, 4, 4],
    );
}
