//! Layer containers: [`Sequential`] chains and [`Residual`] blocks.

use crate::layer::{Layer, Param, QuantControlled, Session};
use fast_tensor::Tensor;

/// A chain of layers executed in order.
///
/// `Sequential` is itself a [`Layer`], so chains nest (residual blocks hold
/// sequentials, models hold blocks).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kinds: Vec<&str> = self.layers.iter().map(|l| l.kind()).collect();
        write!(f, "Sequential({kinds:?})")
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        match self.layers.split_first_mut() {
            None => input.clone(),
            Some((first, rest)) => {
                let mut x = first.forward(input, session);
                for layer in rest {
                    x = layer.forward(&x, session);
                }
                x
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g, session);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        for layer in &mut self.layers {
            layer.visit_quant(f);
        }
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        // Scope names carry each child's position *and* kind, so restoring
        // into a different architecture fails with a name mismatch instead
        // of silently loading one layer's tensors into another.
        for (i, layer) in self.layers.iter_mut().enumerate() {
            v.enter(&format!("{i}:{}", layer.kind()));
            layer.visit_state(v);
            v.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "sequential"
    }
}

/// A [`Sequential`] chain is directly checkpointable: its state walk is the
/// [`Layer::visit_state`] traversal of the whole tree. (`fast_ckpt` talks to
/// `VisitState`; this is the bridge for the common whole-model case.)
impl fast_ckpt::VisitState for Sequential {
    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        Layer::visit_state(self, v);
    }
}

/// A residual block `y = main(x) + shortcut(x)`.
///
/// The shortcut defaults to identity; set one (e.g. a strided 1×1 conv) when
/// the main path changes shape.
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with identity shortcut.
    pub fn new(main: Sequential) -> Self {
        Residual {
            main,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual {
            main,
            shortcut: Some(shortcut),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(main={:?}, shortcut={})",
            self.main,
            self.shortcut.is_some()
        )
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        let mut out = self.main.forward(input, session);
        match &mut self.shortcut {
            Some(s) => {
                let sc = s.forward(input, session);
                out.add_assign(&sc);
            }
            None => out.add_assign(input),
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let mut g = self.main.backward(grad_output, session);
        match &mut self.shortcut {
            Some(s) => {
                let gs = s.backward(grad_output, session);
                g.add_assign(&gs);
            }
            None => g.add_assign(grad_output),
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        self.main.visit_quant(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_quant(f);
        }
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        v.enter("main");
        Layer::visit_state(&mut self.main, v);
        v.exit();
        if let Some(s) = &mut self.shortcut {
            v.enter("shortcut");
            Layer::visit_state(s, v);
            v.exit();
        }
    }

    fn kind(&self) -> &'static str {
        "residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::layer::{parameter_count, quant_layer_count};
    use crate::linear::Dense;
    use rand::SeedableRng;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = Sequential::new()
            .push(Dense::new(4, 8, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, true, &mut rng));
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![3, 4]);
        let y = model.forward(&x, &mut s);
        assert_eq!(y.shape(), &[3, 2]);
        let g = model.backward(&y, &mut s);
        assert_eq!(g.shape(), &[3, 4]);
        assert_eq!(quant_layer_count(&mut model), 2);
        assert_eq!(parameter_count(&mut model), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn identity_residual_adds_input() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut dense = Dense::new(3, 3, false, &mut rng);
        dense.weights_mut().fill(0.0); // main path outputs zero
        let mut block = Residual::new(Sequential::new().push(dense));
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, -2.0, 3.0]);
        let y = block.forward(&x, &mut s);
        assert_eq!(y.data(), x.data());
        // Gradient flows through both paths: identity contributes g, main
        // path contributes 0 here.
        let g = block.backward(&x, &mut s);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn residual_gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut block = Residual::new(
            Sequential::new()
                .push(Dense::new(3, 3, true, &mut rng))
                .push(Relu::new()),
        );
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![2, 3],
            (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = block.forward(&x, &mut s);
        let ones = Tensor::full(vec![2, 3], 1.0);
        let gin = block.backward(&ones, &mut s);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = block.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = block.forward(&xm, &mut s).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2, "idx {idx}");
        }
    }
}
