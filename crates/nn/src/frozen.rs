//! Frozen-weight quantization caches for inference serving (DESIGN.md §8).
//!
//! During training, every GEMM re-quantizes the FP32 master weights because
//! Algorithm 1 may reassign the layer's format between iterations. At
//! inference both the weights and the format assignment are frozen, so each
//! weight operand can be converted FP32 → BFP → FP32 **once** and replayed
//! on every request. [`FrozenWeight`] owns that cached copy for one layer
//! operand: a [`QuantCache`] holding the quantized buffer plus the
//! materialized [`Tensor`] the GEMM consumes.
//!
//! Correctness invariants:
//!
//! * the cache is consulted only when [`Session::freeze_weights`] is set
//!   (never during training);
//! * any weight update invalidates it — weight-bearing layers bump their
//!   version in `visit_params`, the only mutable access path optimizers
//!   have — as does any change of format or grouping axis;
//! * cache builds use a deterministic bit source, so every replica of a
//!   model quantizes to bit-identical weights regardless of request order,
//!   and for deterministic rounding the cached copy is bit-identical to
//!   what the training-path forward would have produced.
//!
//! [`Session::freeze_weights`]: crate::Session

use crate::quant::NumericFormat;
use fast_bfp::cache::QuantCache;
use fast_bfp::{GroupAxis, Lfsr16};
use fast_tensor::Tensor;

/// A cached quantized copy of one weight operand.
///
/// The cache is stale whenever the owning layer's weight version, the
/// numeric format, or the grouping axis differ from the last build; `get`
/// then rebuilds from the FP32 master copy. Repeat hits return the cached
/// tensor with no allocation or quantization work.
///
/// The quantized values are held twice — in the slice-level [`QuantCache`]
/// (which owns the staleness bookkeeping) and materialized as the [`Tensor`]
/// the GEMM consumes. That doubles resident frozen-weight memory (weights
/// are kilobytes at lite scale) in exchange for zero per-request work and a
/// plain `&Tensor` on the hot path; the extra copy happens only on rebuild.
#[derive(Debug, Default)]
pub(crate) struct FrozenWeight {
    /// Weight version: bumped by the owning layer on every mutable weight
    /// access (parameter visitation / direct accessor).
    version: u64,
    /// `(format, axis, per_row)` of the current build, if any.
    built: Option<(NumericFormat, GroupAxis, bool)>,
    /// The quantized buffer (slice-level cache; owns staleness by version).
    cache: QuantCache,
    /// The buffer materialized as the tensor the GEMM consumes.
    tensor: Option<Tensor>,
}

impl FrozenWeight {
    /// Records a (potential) weight mutation, invalidating the cache.
    pub fn mark_dirty(&mut self) {
        self.version = self.version.wrapping_add(1);
        self.cache.invalidate();
        self.tensor = None;
    }

    /// Returns the cached quantized weight shaped `rows × cols`, rebuilding
    /// from `master` if the weights, the format, or the axis changed since
    /// the last build.
    ///
    /// Builds draw stochastic-rounding bits (only relevant for SR weight
    /// formats) from a freshly seeded hardware LFSR, so rebuilds and
    /// replicas are deterministic — see DESIGN.md §8.
    pub fn get(
        &mut self,
        master: &Tensor,
        rows: usize,
        cols: usize,
        fmt: NumericFormat,
        axis: GroupAxis,
    ) -> &Tensor {
        self.fetch(master, rows, cols, (fmt, axis, false), |buf| {
            fmt.quantize_slice(buf, rows, cols, axis, &mut Lfsr16::default());
        })
    }

    /// Like [`FrozenWeight::get`], but quantizes every row as an
    /// *independent* `1 × cols` matrix with groups along the row.
    ///
    /// [`DepthwiseConv2d`](crate::DepthwiseConv2d) quantizes each channel's
    /// kernel row separately, so windowed formats take a per-row exponent
    /// window; a single `rows × cols` build would wrongly share one window
    /// across all channels.
    pub fn get_per_row(
        &mut self,
        master: &Tensor,
        rows: usize,
        cols: usize,
        fmt: NumericFormat,
    ) -> &Tensor {
        self.fetch(
            master,
            rows,
            cols,
            (fmt, GroupAxis::AlongRow, true),
            |buf| {
                let mut bits = Lfsr16::default();
                for row in buf.chunks_mut(cols) {
                    fmt.quantize_slice(row, 1, cols, GroupAxis::AlongRow, &mut bits);
                }
            },
        )
    }

    /// Shared staleness protocol: invalidate on a key change, rebuild the
    /// quantized buffer when the version moved, and rematerialize the
    /// tensor only on rebuild.
    fn fetch(
        &mut self,
        master: &Tensor,
        rows: usize,
        cols: usize,
        key: (NumericFormat, GroupAxis, bool),
        quantize: impl FnOnce(&mut [f32]),
    ) -> &Tensor {
        if self.built != Some(key) {
            self.cache.invalidate();
            self.built = Some(key);
        }
        let mut rebuilt = false;
        let data = self.cache.get_or_build(self.version, master.data(), |buf| {
            quantize(buf);
            rebuilt = true;
        });
        if rebuilt || self.tensor.is_none() {
            self.tensor = Some(Tensor::from_vec(vec![rows, cols], data.to_vec()));
        }
        self.tensor
            .as_ref()
            .expect("frozen weight tensor just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_bfp::BfpFormat;

    fn master() -> Tensor {
        Tensor::from_vec(
            vec![2, 16],
            (0..32).map(|i| 0.013 * i as f32 - 0.2).collect(),
        )
    }

    #[test]
    fn hit_returns_same_values_without_rebuild() {
        let w = master();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let first = fz.get(&w, 2, 16, fmt, GroupAxis::AlongRow).clone();
        let second = fz.get(&w, 2, 16, fmt, GroupAxis::AlongRow).clone();
        assert_eq!(first, second);
        // And it matches a direct quantization of the master copy.
        let mut direct = w.clone();
        fmt.quantize_matrix(&mut direct, GroupAxis::AlongRow, &mut Lfsr16::default());
        assert_eq!(first, direct);
    }

    #[test]
    fn dirty_mark_triggers_rebuild_from_new_master() {
        let mut w = master();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let before = fz.get(&w, 2, 16, fmt, GroupAxis::AlongRow).clone();
        w.data_mut()[0] += 1.0;
        // Without the mark the stale copy would be served.
        fz.mark_dirty();
        let after = fz.get(&w, 2, 16, fmt, GroupAxis::AlongRow).clone();
        assert_ne!(before, after);
    }

    #[test]
    fn format_change_invalidates() {
        let w = master();
        let mut fz = FrozenWeight::default();
        let high = fz
            .get(
                &w,
                2,
                16,
                NumericFormat::bfp_nearest(BfpFormat::high()),
                GroupAxis::AlongRow,
            )
            .clone();
        let low = fz
            .get(
                &w,
                2,
                16,
                NumericFormat::bfp_nearest(BfpFormat::low()),
                GroupAxis::AlongRow,
            )
            .clone();
        assert_ne!(high, low, "m=4 vs m=2 must differ on this data");
    }

    #[test]
    fn axis_change_invalidates() {
        let w = Tensor::from_vec(
            vec![16, 16],
            (0..256i32).map(|i| 2.0f32.powi(-(i % 23))).collect(),
        );
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let by_row = fz.get(&w, 16, 16, fmt, GroupAxis::AlongRow).clone();
        let by_col = fz.get(&w, 16, 16, fmt, GroupAxis::AlongCol).clone();
        assert_ne!(by_row, by_col);
    }
}
