//! Frozen-weight quantization caches for inference serving (DESIGN.md §8).
//!
//! During training, every GEMM re-quantizes the FP32 master weights because
//! Algorithm 1 may reassign the layer's format between iterations. At
//! inference both the weights and the format assignment are frozen, so each
//! weight operand can be converted FP32 → BFP **once** and replayed on
//! every request. [`FrozenWeight`] owns that cached copy for one layer
//! operand as a plan-[`Prepared`] operand: for packable BFP formats that is
//! the *packed* representation (`i8` mantissas + per-group scales, ~¼ of
//! the dense f32 footprint — the serving working set shrinks accordingly),
//! for everything else a quantized dense tensor.
//!
//! Correctness invariants:
//!
//! * the cache is consulted only when [`Session::freeze_weights`] is set
//!   (never during training);
//! * any weight update invalidates it — weight-bearing layers bump their
//!   version in `visit_params`, the only mutable access path optimizers
//!   have — as does any change of format or grouping axis;
//! * cache builds use a deterministic bit source, so every replica of a
//!   model quantizes to bit-identical weights regardless of request order,
//!   and for deterministic rounding the cached operand is bit-identical to
//!   what the training-path forward would have produced.
//!
//! [`Session::freeze_weights`]: crate::Session

use crate::qgemm::{prepare_slice_counter, prepare_slice_with, CounterCtx, Prepared};
use crate::quant::NumericFormat;
use fast_bfp::kernel::fake_quantize_matrix_counter;
use fast_bfp::{CounterRng, GroupAxis, Lfsr16, QuantStats, Rounding, SrMode};
use fast_tensor::Tensor;

/// Seed of the deterministic counter source frozen builds draw from — the
/// same constant the hardware LFSR powers up with, so counter-mode replicas
/// are deterministic for the same reason sequential ones are: the noise
/// depends only on the build, never on request order.
const FROZEN_COUNTER_SEED: u64 = 0xACE1;

/// Whether a counter-mode frozen build applies to `fmt` (only SR-rounded
/// BFP draws noise; everything else builds identically in both modes).
fn counter_applies(sr: SrMode, fmt: &NumericFormat) -> bool {
    sr == SrMode::Counter
        && matches!(
            fmt,
            NumericFormat::Bfp {
                rounding: Rounding::Stochastic { .. },
                ..
            }
        )
}

/// A cached quantized copy of one weight operand.
///
/// The cache is stale whenever the owning layer's weight version, the
/// numeric format, or the grouping axis differ from the last build; `get`
/// then rebuilds from the FP32 master copy. Repeat hits return the cached
/// [`Prepared`] operand with no allocation or quantization work.
#[derive(Debug, Default)]
pub(crate) struct FrozenWeight {
    /// Weight version: bumped by the owning layer on every mutable weight
    /// access (parameter visitation / direct accessor).
    version: u64,
    /// `(format, axis, per_row, sr_mode, version)` of the current build, if
    /// any.
    built: Option<(NumericFormat, GroupAxis, bool, SrMode, u64)>,
    /// The cached GEMM operand.
    prepared: Option<Prepared>,
}

impl FrozenWeight {
    /// Records a (potential) weight mutation, invalidating the cache.
    pub fn mark_dirty(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Returns the cached quantized weight operand shaped `rows × cols`,
    /// rebuilding from `master` if the weights, the format, or the axis
    /// changed since the last build.
    ///
    /// Builds draw stochastic-rounding bits (only relevant for SR weight
    /// formats) from a freshly seeded deterministic source — the hardware
    /// LFSR under [`SrMode::Lfsr`], a fixed-seed counter source at base
    /// offset 0 under [`SrMode::Counter`] — so rebuilds and replicas are
    /// deterministic — see DESIGN.md §8 and §12.
    pub fn get(
        &mut self,
        master: &Tensor,
        rows: usize,
        cols: usize,
        fmt: NumericFormat,
        axis: GroupAxis,
        sr: SrMode,
    ) -> &Prepared {
        let key = (fmt, axis, false, sr, self.version);
        if self.built != Some(key) || self.prepared.is_none() {
            let mut stats = QuantStats::default(); // build-once cost, unmetered
            self.prepared = Some(if counter_applies(sr, &fmt) {
                prepare_slice_counter(
                    &mut stats,
                    master.data(),
                    rows,
                    cols,
                    fmt,
                    axis,
                    CounterCtx {
                        rng: CounterRng::new(FROZEN_COUNTER_SEED),
                        base: 0,
                        workers: 1,
                    },
                )
            } else {
                prepare_slice_with(
                    &mut Lfsr16::default(),
                    &mut stats,
                    master.data(),
                    rows,
                    cols,
                    fmt,
                    axis,
                )
            });
            self.built = Some(key);
        }
        self.prepared.as_ref().expect("frozen operand just built")
    }

    /// Like [`FrozenWeight::get`], but quantizes every row as an
    /// *independent* `1 × cols` matrix with groups along the row, yielding a
    /// dense operand.
    ///
    /// [`DepthwiseConv2d`](crate::DepthwiseConv2d) quantizes each channel's
    /// kernel row separately, so windowed formats take a per-row exponent
    /// window; a single `rows × cols` build would wrongly share one window
    /// across all channels. The rows are later re-sliced into per-channel
    /// `1 × k²` GEMM operands, so this cache stays dense.
    pub fn get_per_row(
        &mut self,
        master: &Tensor,
        rows: usize,
        cols: usize,
        fmt: NumericFormat,
        sr: SrMode,
    ) -> &Prepared {
        let key = (fmt, GroupAxis::AlongRow, true, sr, self.version);
        if self.built != Some(key) || self.prepared.is_none() {
            let mut buf = master.data().to_vec();
            if let (
                true,
                NumericFormat::Bfp {
                    format,
                    rounding,
                    windowed,
                },
            ) = (counter_applies(sr, &fmt), fmt)
            {
                // Row `r` draws at counter positions `r·cols ..`, matching
                // the element offsets of the whole-matrix builds — each row
                // still takes its own exponent window because it is
                // quantized as an independent `1 × cols` matrix.
                let rng = CounterRng::new(FROZEN_COUNTER_SEED);
                for (r, row) in buf.chunks_mut(cols).enumerate() {
                    fake_quantize_matrix_counter(
                        row,
                        1,
                        cols,
                        GroupAxis::AlongRow,
                        format,
                        rounding,
                        rng,
                        (r * cols) as u64,
                        windowed,
                        1,
                    );
                }
            } else {
                let mut bits = Lfsr16::default();
                for row in buf.chunks_mut(cols) {
                    fmt.quantize_slice(row, 1, cols, GroupAxis::AlongRow, &mut bits);
                }
            }
            self.prepared = Some(Prepared::Dense(Tensor::from_vec(vec![rows, cols], buf)));
            self.built = Some(key);
        }
        self.prepared.as_ref().expect("frozen operand just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_bfp::BfpFormat;

    fn master() -> Tensor {
        Tensor::from_vec(
            vec![2, 16],
            (0..32).map(|i| 0.013 * i as f32 - 0.2).collect(),
        )
    }

    #[test]
    fn hit_returns_same_values_without_rebuild() {
        let w = master();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let first = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        let second = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        assert_eq!(first, second);
        // And it matches a direct quantization of the master copy.
        let mut direct = w.clone();
        fmt.quantize_matrix(&mut direct, GroupAxis::AlongRow, &mut Lfsr16::default());
        assert_eq!(first, direct);
    }

    #[test]
    fn packable_bfp_weights_are_cached_packed() {
        let w = master();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let prepared = fz.get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr);
        assert!(
            matches!(prepared, Prepared::Packed(_)),
            "m=4 BFP must freeze packed"
        );
        // The packed working set is well under the dense f32 footprint.
        assert!(prepared.heap_bytes() < 4 * 32);
        // FP32 weights freeze dense.
        let mut fz2 = FrozenWeight::default();
        assert!(matches!(
            fz2.get(
                &w,
                2,
                16,
                NumericFormat::Fp32,
                GroupAxis::AlongRow,
                SrMode::Lfsr
            ),
            Prepared::Dense(_)
        ));
    }

    #[test]
    fn dirty_mark_triggers_rebuild_from_new_master() {
        let mut w = master();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let before = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        w.data_mut()[0] += 1.0;
        // Without the mark the stale copy would be served.
        fz.mark_dirty();
        let after = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        assert_ne!(before, after);
    }

    #[test]
    fn format_change_invalidates() {
        let w = master();
        let mut fz = FrozenWeight::default();
        let high = fz
            .get(
                &w,
                2,
                16,
                NumericFormat::bfp_nearest(BfpFormat::high()),
                GroupAxis::AlongRow,
                SrMode::Lfsr,
            )
            .to_tensor();
        let low = fz
            .get(
                &w,
                2,
                16,
                NumericFormat::bfp_nearest(BfpFormat::low()),
                GroupAxis::AlongRow,
                SrMode::Lfsr,
            )
            .to_tensor();
        assert_ne!(high, low, "m=4 vs m=2 must differ on this data");
    }

    #[test]
    fn axis_change_invalidates() {
        let w = Tensor::from_vec(
            vec![16, 16],
            (0..256i32).map(|i| 2.0f32.powi(-(i % 23))).collect(),
        );
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let by_row = fz
            .get(&w, 16, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        let by_col = fz
            .get(&w, 16, 16, fmt, GroupAxis::AlongCol, SrMode::Lfsr)
            .to_tensor();
        assert_ne!(by_row, by_col);
    }

    #[test]
    fn counter_mode_builds_are_deterministic_and_keyed() {
        let w = master();
        let fmt = NumericFormat::bfp_stochastic(BfpFormat::high());
        let mut fz = FrozenWeight::default();
        let lfsr = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Lfsr)
            .to_tensor();
        // Switching the mode rebuilds (the key includes it) …
        let counter = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Counter)
            .to_tensor();
        // … and a repeat counter build replays bit-identically.
        let again = fz
            .get(&w, 2, 16, fmt, GroupAxis::AlongRow, SrMode::Counter)
            .to_tensor();
        assert_eq!(counter, again);
        assert_ne!(lfsr, counter, "independent noise sources must decorrelate");
        // Counter builds of deterministic formats match the sequential path
        // bit for bit (no noise drawn on either).
        let det = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut a = FrozenWeight::default();
        let mut b = FrozenWeight::default();
        assert_eq!(
            a.get(&w, 2, 16, det, GroupAxis::AlongRow, SrMode::Lfsr)
                .to_tensor(),
            b.get(&w, 2, 16, det, GroupAxis::AlongRow, SrMode::Counter)
                .to_tensor()
        );
        // Per-row counter builds replay too.
        let mut c = FrozenWeight::default();
        let p1 = c.get_per_row(&w, 2, 16, fmt, SrMode::Counter).to_tensor();
        let mut d = FrozenWeight::default();
        let p2 = d.get_per_row(&w, 2, 16, fmt, SrMode::Counter).to_tensor();
        assert_eq!(p1, p2);
    }
}
