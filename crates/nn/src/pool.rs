//! Pooling and reshaping layers.

use crate::layer::{Layer, Session};
use fast_tensor::{
    global_avg_pool, global_avg_pool_backward, max_pool2d, max_pool2d_backward, MaxPoolOutput,
    Tensor,
};

/// Non-overlapping max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    cache: Option<(MaxPoolOutput, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a `k×k` max-pool (stride `k`).
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        MaxPool2d { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        let p = max_pool2d(input, self.k);
        let out = p.output.clone();
        if session.train {
            self.cache = Some((p, input.shape().to_vec()));
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let (p, shape) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward before forward");
        max_pool2d_backward(grad_output, p, shape)
    }

    fn kind(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Global average pooling NCHW → (batch, channels).
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { in_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        if session.train {
            self.in_shape = Some(input.shape().to_vec());
        }
        global_avg_pool(input)
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let shape = self
            .in_shape
            .as_ref()
            .expect("GlobalAvgPool::backward before forward");
        global_avg_pool_backward(grad_output, shape)
    }

    fn kind(&self) -> &'static str {
        "global_avg_pool"
    }
}

/// Flattens NCHW to (batch, C·H·W).
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { in_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert!(input.rank() >= 2, "Flatten expects at least rank-2 input");
        let b = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if session.train {
            self.in_shape = Some(input.shape().to_vec());
        }
        input.clone().reshape(vec![b, rest])
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let shape = self
            .in_shape
            .clone()
            .expect("Flatten::backward before forward");
        grad_output.clone().reshape(shape)
    }

    fn kind(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_roundtrip() {
        let mut p = MaxPool2d::new(2);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 5., 2., 3.]);
        let y = p.forward(&x, &mut s);
        assert_eq!(y.data(), &[5.0]);
        let gi = p.backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]), &mut s);
        assert_eq!(gi.data(), &[0., 2., 0., 0.]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![2, 3, 4, 4]);
        let y = f.forward(&x, &mut s);
        assert_eq!(y.shape(), &[2, 48]);
        let gi = f.backward(&y, &mut s);
        assert_eq!(gi.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn gap_layer() {
        let mut g = GlobalAvgPool::new();
        let mut s = Session::new(0);
        let x = Tensor::full(vec![1, 2, 2, 2], 3.0);
        let y = g.forward(&x, &mut s);
        assert_eq!(y.data(), &[3.0, 3.0]);
    }
}
