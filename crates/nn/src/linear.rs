//! The fully-connected (dense) layer with quantized GEMMs.
//!
//! All three training GEMMs of paper Fig 3 are quantized according to the
//! layer's [`LayerPrecision`], grouping along each GEMM's reduction axis:
//!
//! * forward `O = A·W` — reduce over `K`: `A` grouped along rows, `W` along
//!   columns;
//! * `∇A = ∇O·Wᵀ` — reduce over `N`: `∇O` along rows, `W` along rows;
//! * `∇W = Aᵀ·∇O` — reduce over the batch: both grouped along columns.
//!
//! Master weights stay FP32. During training they are re-quantized on every
//! use, which is what permits Algorithm 1's per-iteration precision changes;
//! under a frozen-weight inference session ([`Session::inference`]) the
//! forward-path quantized copy is built once and replayed from a
//! frozen-weight cache (DESIGN.md §8), invalidated by any weight update.

use crate::frozen::FrozenWeight;
use crate::layer::{GemmShape, Layer, Param, QuantControlled, Session};
use crate::qgemm::{self, GemmOperand, Orient};
use crate::quant::LayerPrecision;
use fast_bfp::{GroupAxis, SrMode};
use fast_tensor::{col_sums, kaiming_normal, ExecMode, Tensor};
use rand::Rng;

/// A dense layer `y = x·W + b` with independently quantized W/A/G tensors.
#[derive(Debug)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    use_bias: bool,
    precision: LayerPrecision,
    exec_mode: Option<ExecMode>,
    sr_mode: Option<SrMode>,
    frozen_w: FrozenWeight,
    saved_input: Option<Tensor>,
    last_grad: Option<Tensor>,
    last_shape: Option<GemmShape>,
}

impl Dense {
    /// Creates a dense layer `in_dim → out_dim` with Kaiming-initialized
    /// weights.
    pub fn new(in_dim: usize, out_dim: usize, use_bias: bool, rng: &mut impl Rng) -> Self {
        let w = kaiming_normal(vec![in_dim, out_dim], in_dim, rng);
        Dense {
            w,
            b: Tensor::zeros(vec![out_dim]),
            gw: Tensor::zeros(vec![in_dim, out_dim]),
            gb: Tensor::zeros(vec![out_dim]),
            use_bias,
            precision: LayerPrecision::default(),
            exec_mode: None,
            sr_mode: None,
            frozen_w: FrozenWeight::default(),
            saved_input: None,
            last_grad: None,
            last_shape: None,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }

    /// Immutable weight access (FP32 master copy).
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// Mutable weight access (for tests / serialization). Invalidates the
    /// frozen-weight cache.
    pub fn weights_mut(&mut self) -> &mut Tensor {
        self.frozen_w.mark_dirty();
        &mut self.w
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2, "Dense expects (batch, features) input");
        assert_eq!(
            input.shape()[1],
            self.in_dim(),
            "Dense input width mismatch"
        );
        let batch = input.shape()[0];
        self.last_shape = Some(GemmShape {
            m: batch,
            k: self.in_dim(),
            n: self.out_dim(),
        });

        let (in_dim, out_dim) = (self.in_dim(), self.out_dim());
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);
        let xq = qgemm::prepare_sr(
            session,
            sr,
            input,
            self.precision.activations,
            GroupAxis::AlongRow,
        );
        let mut out = if session.freeze_weights {
            let wq = self.frozen_w.get(
                &self.w,
                in_dim,
                out_dim,
                self.precision.weights,
                GroupAxis::AlongCol,
                sr,
            );
            qgemm::execute_with(session, mode, Orient::Nn, &xq, &GemmOperand::Cached(wq))
        } else {
            let wq = qgemm::prepare_sr(
                session,
                sr,
                &self.w,
                self.precision.weights,
                GroupAxis::AlongCol,
            );
            qgemm::execute_with(session, mode, Orient::Nn, &xq, &wq)
        };
        if self.use_bias {
            let n = self.out_dim();
            let bd = self.b.data();
            for row in out.data_mut().chunks_mut(n) {
                for (o, &b) in row.iter_mut().zip(bd) {
                    *o += b;
                }
            }
        }
        if session.train {
            self.saved_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let x = self
            .saved_input
            .as_ref()
            .expect("Dense::backward requires a prior training-mode forward pass");
        assert_eq!(grad_output.shape(), &[x.shape()[0], self.out_dim()]);

        // ∇W = Aᵀ·∇O, reduction over the batch dimension.
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);
        let xq = qgemm::prepare_sr(
            session,
            sr,
            x,
            self.precision.activations,
            GroupAxis::AlongCol,
        );
        let gq = qgemm::prepare_sr(
            session,
            sr,
            grad_output,
            self.precision.gradients,
            GroupAxis::AlongCol,
        );
        let gw = qgemm::execute_with(session, mode, Orient::Tn, &xq, &gq);
        self.gw.add_assign(&gw);
        if self.use_bias {
            let sums = col_sums(grad_output);
            for (g, s) in self.gb.data_mut().iter_mut().zip(sums) {
                *g += s;
            }
        }

        // ∇A = ∇O·Wᵀ, reduction over the output dimension.
        let gq2 = qgemm::prepare_sr(
            session,
            sr,
            grad_output,
            self.precision.gradients,
            GroupAxis::AlongRow,
        );
        let wq = qgemm::prepare_sr(
            session,
            sr,
            &self.w,
            self.precision.weights,
            GroupAxis::AlongRow,
        );
        // The NT kernel over g (B,N) and W (K,N) reduces over N and yields
        // (B,K) = g·Wᵀ.
        let grad_input = qgemm::execute_with(session, mode, Orient::Nt, &gq2, &wq);
        if session.record_sensitivity {
            self.last_grad = Some(grad_output.clone());
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        // Parameter visitation hands out mutable weight access (it is how
        // optimizers step), so conservatively invalidate the frozen cache.
        self.frozen_w.mark_dirty();
        f(Param {
            value: &mut self.w,
            grad: &mut self.gw,
            decay: true,
        });
        if self.use_bias {
            f(Param {
                value: &mut self.b,
                grad: &mut self.gb,
                decay: false,
            });
        }
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        f(self);
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        // Hands out mutable weight access, so invalidate the frozen cache
        // (same rule as `visit_params`).
        self.frozen_w.mark_dirty();
        v.tensor("w", &mut self.w);
        if self.use_bias {
            v.tensor("b", &mut self.b);
        }
        crate::quant::visit_precision(v, &mut self.precision);
        v.opt_tensor("saved_input", &mut self.saved_input);
        v.opt_tensor("last_grad", &mut self.last_grad);
    }

    fn kind(&self) -> &'static str {
        "dense"
    }
}

impl QuantControlled for Dense {
    fn precision_mut(&mut self) -> &mut LayerPrecision {
        &mut self.precision
    }

    fn exec_mode_mut(&mut self) -> &mut Option<ExecMode> {
        &mut self.exec_mode
    }

    fn sr_mode_mut(&mut self) -> &mut Option<SrMode> {
        &mut self.sr_mode
    }

    fn precision(&self) -> LayerPrecision {
        self.precision
    }

    fn weight(&self) -> &Tensor {
        &self.w
    }

    fn last_input(&self) -> Option<&Tensor> {
        self.saved_input.as_ref()
    }

    fn last_grad_output(&self) -> Option<&Tensor> {
        self.last_grad.as_ref()
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        self.last_shape
    }

    fn label(&self) -> String {
        format!("dense({}->{})", self.in_dim(), self.out_dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_matches_manual_gemm() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, true, &mut r);
        layer
            .weights_mut()
            .data_mut()
            .copy_from_slice(&[1., 2., 3., 4., 5., 6.]);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, 0.5, -1.0]);
        let y = layer.forward(&x, &mut s);
        // y = [1*1 + 0.5*3 - 1*5, 1*2 + 0.5*4 - 1*6] = [-2.5, -2.0]
        assert_eq!(y.data(), &[-2.5, -2.0]);
    }

    #[test]
    fn gradient_check_fp32() {
        let mut r = rng();
        let mut layer = Dense::new(4, 3, true, &mut r);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![2, 4], (0..8).map(|i| 0.1 * i as f32 - 0.3).collect());
        let out = layer.forward(&x, &mut s);
        let gout = Tensor::full(out.shape().to_vec(), 1.0);
        let gin = layer.backward(&gout, &mut s);

        let eps = 1e-3f32;
        // Input gradient.
        for idx in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = layer.forward(&xm, &mut s).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2, "input grad at {idx}");
        }
    }

    #[test]
    fn weight_gradient_check_fp32() {
        let mut r = rng();
        let mut layer = Dense::new(3, 2, false, &mut r);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 0.3, 0.9, -0.4]);
        let _ = layer.forward(&x, &mut s);
        let gout = Tensor::full(vec![2, 2], 1.0);
        let _ = layer.backward(&gout, &mut s);
        let analytic = layer.gw.clone();

        let eps = 1e-3f32;
        for idx in 0..6 {
            let orig = layer.w.data()[idx];
            layer.w.data_mut()[idx] = orig + eps;
            let lp: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig - eps;
            let lm: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-2,
                "weight grad at {idx}"
            );
        }
    }

    #[test]
    fn quantized_forward_differs_but_tracks_fp32() {
        let mut r = rng();
        let mut layer = Dense::new(16, 8, false, &mut r);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(
            vec![4, 16],
            (0..64)
                .map(|i| ((i * 37) % 13) as f32 * 0.07 - 0.4)
                .collect(),
        );
        let y_fp = layer.forward(&x, &mut s);
        *layer.precision_mut() = LayerPrecision::bfp_fixed(4);
        let y_q = layer.forward(&x, &mut s);
        assert_ne!(y_fp, y_q, "BFP quantization must alter the output");
        let rel: f64 = y_fp
            .data()
            .iter()
            .zip(y_q.data())
            .map(|(a, b)| ((a - b) as f64).abs())
            .sum::<f64>()
            / y_fp.data().iter().map(|&v| (v as f64).abs()).sum::<f64>();
        assert!(
            rel < 0.15,
            "HighBFP should stay close to FP32, rel err {rel}"
        );
    }

    #[test]
    fn quant_handle_exposes_state() {
        let mut r = rng();
        let mut layer = Dense::new(4, 4, false, &mut r);
        let mut s = Session::new(0);
        s.record_sensitivity = true;
        assert!(layer.last_input().is_none());
        let x = Tensor::zeros(vec![2, 4]);
        let y = layer.forward(&x, &mut s);
        let _ = layer.backward(&y, &mut s);
        assert!(layer.last_input().is_some());
        assert!(layer.last_grad_output().is_some());
        assert_eq!(layer.gemm_shape(), Some(GemmShape { m: 2, k: 4, n: 4 }));
        assert_eq!(layer.label(), "dense(4->4)");
    }

    #[test]
    fn sensitivity_caching_is_off_by_default() {
        let mut r = rng();
        let mut layer = Dense::new(4, 4, false, &mut r);
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![2, 4]);
        let y = layer.forward(&x, &mut s);
        let _ = layer.backward(&y, &mut s);
        assert!(
            layer.last_grad_output().is_none(),
            "plain training must not pay the grad_output clone"
        );
    }

    #[test]
    fn frozen_forward_is_bit_identical_and_invalidates_on_update() {
        let mut r = rng();
        let mut layer = Dense::new(16, 8, true, &mut r);
        *layer.precision_mut() = LayerPrecision::bfp_fixed(4);
        let x = Tensor::from_vec(
            vec![2, 16],
            (0..32)
                .map(|i| ((i * 29) % 17) as f32 * 0.05 - 0.4)
                .collect(),
        );
        let y_requant = layer.forward(&x, &mut Session::eval(0));
        let mut frozen = Session::inference(0);
        let y_frozen = layer.forward(&x, &mut frozen);
        assert_eq!(
            y_requant, y_frozen,
            "cached weights must not change outputs"
        );
        // Repeat request replays the cache and stays identical.
        assert_eq!(y_frozen, layer.forward(&x, &mut frozen));
        // A weight update through the visitation path invalidates the cache.
        layer.visit_params(&mut |p| {
            if p.decay {
                p.value.data_mut()[0] += 0.5;
            }
        });
        let y_updated = layer.forward(&x, &mut frozen);
        assert_ne!(y_frozen, y_updated, "stale cache served after update");
        assert_eq!(y_updated, layer.forward(&x, &mut Session::eval(0)));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, false, &mut r);
        let mut s = Session::eval(0);
        let _ = layer.forward(&Tensor::zeros(vec![1, 2]), &mut s);
        assert!(layer.last_input().is_none());
    }
}
