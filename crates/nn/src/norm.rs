//! Normalization layers (FP32 paths — the paper excludes normalization from
//! the BFP cost analysis, Section VII-B, and hardware keeps them in FP).

use crate::layer::{Layer, Param, Session};
use fast_tensor::Tensor;

/// Batch normalization over the channel dimension of NCHW tensors.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    g_gamma: Tensor,
    g_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::full(vec![channels], 1.0),
            beta: Tensor::zeros(vec![channels]),
            g_gamma: Tensor::zeros(vec![channels]),
            g_beta: Tensor::zeros(vec![channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn channels(&self) -> usize {
        self.gamma.numel()
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 4, "BatchNorm2d expects NCHW input");
        let (b, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let n = (b * h * w) as f64;
        if !session.train {
            // Inference: a per-channel affine with running statistics,
            // emitted plane by plane in NCHW order (no clone, no zero
            // fill). The per-channel divide/sqrt is hoisted out of the
            // batch loop; the per-element expression is kept verbatim so
            // results are bit-identical to the unhoisted form.
            let istd: Vec<f32> = self
                .running_var
                .iter()
                .map(|&var| 1.0 / (var + self.eps).sqrt())
                .collect();
            let mut data = Vec::with_capacity(b * c * h * w);
            for bi in 0..b {
                for ci in 0..c {
                    let (mean, istd) = (self.running_mean[ci], istd[ci]);
                    let (g, be) = (self.gamma.data()[ci], self.beta.data()[ci]);
                    let base = (bi * c + ci) * h * w;
                    data.extend(
                        input.data()[base..base + h * w]
                            .iter()
                            .map(|&v| g * (v - mean) * istd + be),
                    );
                }
            }
            return Tensor::from_vec(input.shape().to_vec(), data);
        }
        let mut out = input.clone();
        {
            let mut x_hat = input.clone();
            let mut inv_std = vec![0.0f32; c];
            for (ci, inv_std_ci) in inv_std.iter_mut().enumerate() {
                let mut sum = 0.0f64;
                let mut sq = 0.0f64;
                for bi in 0..b {
                    let base = (bi * c + ci) * h * w;
                    for &v in &input.data()[base..base + h * w] {
                        sum += v as f64;
                        sq += (v as f64) * (v as f64);
                    }
                }
                let mean = sum / n;
                let var = (sq / n - mean * mean).max(0.0);
                let istd = 1.0 / (var + self.eps as f64).sqrt();
                *inv_std_ci = istd as f32;
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean as f32;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var as f32;
                let (g, be) = (self.gamma.data()[ci], self.beta.data()[ci]);
                for bi in 0..b {
                    let base = (bi * c + ci) * h * w;
                    for i in base..base + h * w {
                        let xh = ((input.data()[i] as f64 - mean) * istd) as f32;
                        x_hat.data_mut()[i] = xh;
                        out.data_mut()[i] = g * xh + be;
                    }
                }
            }
            self.cache = Some(BnCache {
                x_hat,
                inv_std,
                shape: input.shape().to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        assert_eq!(grad_output.shape(), cache.shape.as_slice());
        let (b, c, h, w) = (
            cache.shape[0],
            cache.shape[1],
            cache.shape[2],
            cache.shape[3],
        );
        let n = (b * h * w) as f64;
        let mut grad_in = grad_output.zeros_like();
        for ci in 0..c {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for bi in 0..b {
                let base = (bi * c + ci) * h * w;
                for i in base..base + h * w {
                    let dy = grad_output.data()[i] as f64;
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.x_hat.data()[i] as f64;
                }
            }
            self.g_gamma.data_mut()[ci] += sum_dy_xhat as f32;
            self.g_beta.data_mut()[ci] += sum_dy as f32;
            let g = self.gamma.data()[ci] as f64;
            let istd = cache.inv_std[ci] as f64;
            for bi in 0..b {
                let base = (bi * c + ci) * h * w;
                for i in base..base + h * w {
                    let dy = grad_output.data()[i] as f64;
                    let xh = cache.x_hat.data()[i] as f64;
                    grad_in.data_mut()[i] =
                        ((g * istd / n) * (n * dy - sum_dy - xh * sum_dy_xhat)) as f32;
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        f(Param {
            value: &mut self.gamma,
            grad: &mut self.g_gamma,
            decay: false,
        });
        f(Param {
            value: &mut self.beta,
            grad: &mut self.g_beta,
            decay: false,
        });
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        v.tensor("gamma", &mut self.gamma);
        v.tensor("beta", &mut self.beta);
        // The running statistics are persistent buffers, not parameters: no
        // optimizer touches them, but eval/serving outputs depend on them,
        // so an artifact without them would not serve the trained model.
        v.f32s("running_mean", &mut self.running_mean);
        v.f32s("running_var", &mut self.running_var);
    }

    fn kind(&self) -> &'static str {
        "batchnorm2d"
    }
}

/// Layer normalization over the last dimension of a rank-2 tensor
/// (token-wise, for the transformer).
#[derive(Debug)]
pub struct LayerNorm {
    gamma: Tensor,
    beta: Tensor,
    g_gamma: Tensor,
    g_beta: Tensor,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Debug)]
struct LnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer-norm over feature width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::full(vec![dim], 1.0),
            beta: Tensor::zeros(vec![dim]),
            g_gamma: Tensor::zeros(vec![dim]),
            g_beta: Tensor::zeros(vec![dim]),
            eps: 1e-5,
            cache: None,
        }
    }

    fn dim(&self) -> usize {
        self.gamma.numel()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2, "LayerNorm expects (rows, dim) input");
        let (r, d) = (input.shape()[0], input.shape()[1]);
        assert_eq!(d, self.dim(), "LayerNorm width mismatch");
        let mut out = input.clone();
        let mut x_hat = input.clone();
        let mut inv_std = vec![0.0f32; r];
        for (i, inv_std_i) in inv_std.iter_mut().enumerate() {
            let row = &input.data()[i * d..(i + 1) * d];
            let mean = row.iter().map(|&v| v as f64).sum::<f64>() / d as f64;
            let var = row.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / d as f64;
            let istd = 1.0 / (var + self.eps as f64).sqrt();
            *inv_std_i = istd as f32;
            for (j, &rv) in row.iter().enumerate() {
                let xh = ((rv as f64 - mean) * istd) as f32;
                x_hat.data_mut()[i * d + j] = xh;
                out.data_mut()[i * d + j] = self.gamma.data()[j] * xh + self.beta.data()[j];
            }
        }
        if session.train {
            self.cache = Some(LnCache { x_hat, inv_std });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("LayerNorm::backward before forward");
        let (r, d) = (grad_output.shape()[0], grad_output.shape()[1]);
        let mut grad_in = grad_output.zeros_like();
        for i in 0..r {
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for j in 0..d {
                let dy = (grad_output.data()[i * d + j] * self.gamma.data()[j]) as f64;
                sum_dy += dy;
                sum_dy_xhat += dy * cache.x_hat.data()[i * d + j] as f64;
            }
            let istd = cache.inv_std[i] as f64;
            for j in 0..d {
                let dy = (grad_output.data()[i * d + j] * self.gamma.data()[j]) as f64;
                let xh = cache.x_hat.data()[i * d + j] as f64;
                grad_in.data_mut()[i * d + j] =
                    ((istd / d as f64) * (d as f64 * dy - sum_dy - xh * sum_dy_xhat)) as f32;
            }
        }
        for j in 0..d {
            let mut gg = 0.0f64;
            let mut gb = 0.0f64;
            for i in 0..r {
                let dy = grad_output.data()[i * d + j] as f64;
                gg += dy * cache.x_hat.data()[i * d + j] as f64;
                gb += dy;
            }
            self.g_gamma.data_mut()[j] += gg as f32;
            self.g_beta.data_mut()[j] += gb as f32;
        }
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        f(Param {
            value: &mut self.gamma,
            grad: &mut self.g_gamma,
            decay: false,
        });
        f(Param {
            value: &mut self.beta,
            grad: &mut self.g_beta,
            decay: false,
        });
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        v.tensor("gamma", &mut self.gamma);
        v.tensor("beta", &mut self.beta);
    }

    fn kind(&self) -> &'static str {
        "layernorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let mut bn = BatchNorm2d::new(2);
        let mut s = Session::new(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::from_vec(
            vec![4, 2, 3, 3],
            (0..72).map(|_| rng.gen_range(-5.0f32..5.0) + 2.0).collect(),
        );
        let y = bn.forward(&x, &mut s);
        // Per-channel mean ~0, var ~1.
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for i in 0..9 {
                    vals.push(y.data()[(b * 2 + c) * 9 + i] as f64);
                }
            }
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn batchnorm_gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        let mut s = Session::new(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = Tensor::from_vec(
            vec![2, 2, 2, 2],
            (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        // Random upstream gradient fixes a nontrivial loss L = <g, y>.
        let g = Tensor::from_vec(
            vec![2, 2, 2, 2],
            (0..16).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = bn.forward(&x, &mut s);
        let gin = bn.backward(&g, &mut s);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let yp = bn.forward(&xp, &mut s);
            let lp: f32 = yp.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let ym = bn.forward(&xm, &mut s);
            let lm: f32 = ym.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: {num} vs {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut s = Session::new(0);
        // Train on shifted data until running stats converge.
        for _ in 0..300 {
            let x = Tensor::full(vec![2, 1, 2, 2], 4.0);
            let _ = bn.forward(&x, &mut s);
        }
        let mut e = Session::eval(0);
        let y = bn.forward(&Tensor::full(vec![1, 1, 2, 2], 4.0), &mut e);
        // Input equals the running mean, so the output should be ~beta = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 0.1), "{:?}", y.data());
    }

    #[test]
    fn layernorm_gradient_check() {
        let mut ln = LayerNorm::new(6);
        let mut s = Session::new(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let x = Tensor::from_vec(
            vec![3, 6],
            (0..18).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let g = Tensor::from_vec(
            vec![3, 6],
            (0..18).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = ln.forward(&x, &mut s);
        let gin = ln.backward(&g, &mut s);
        let eps = 1e-3f32;
        for idx in [0usize, 7, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = ln
                .forward(&xp, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = ln
                .forward(&xm, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 2e-2, "idx {idx}");
        }
    }

    #[test]
    fn layernorm_rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![2, 4], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let y = ln.forward(&x, &mut s);
        for i in 0..2 {
            let row = &y.data()[i * 4..(i + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
        }
    }
}
