//! Elementwise activation layers.

use crate::layer::{Layer, Session};
use fast_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        let out = input.map(|v| v.max(0.0));
        if session.train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let mask = self.mask.as_ref().expect("Relu::backward before forward");
        assert_eq!(mask.len(), grad_output.numel());
        let mut g = grad_output.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn kind(&self) -> &'static str {
        "relu"
    }
}

/// Leaky ReLU with slope `alpha` on the negative side (YOLO backbones).
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    mask: Option<Vec<bool>>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with negative slope `alpha` (e.g. 0.1).
    pub fn new(alpha: f32) -> Self {
        assert!(alpha >= 0.0, "negative-side slope must be non-negative");
        LeakyRelu { alpha, mask: None }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        let a = self.alpha;
        let out = input.map(|v| if v > 0.0 { v } else { a * v });
        if session.train {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("LeakyRelu::backward before forward");
        let mut g = grad_output.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v *= self.alpha;
            }
        }
        g
    }

    fn kind(&self) -> &'static str {
        "leaky_relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, &mut s);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]);
        let gi = relu.backward(&g, &mut s);
        assert_eq!(gi.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_forward_backward() {
        let mut lr = LeakyRelu::new(0.1);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![3], vec![-2.0, 0.5, 4.0]);
        let y = lr.forward(&x, &mut s);
        assert_eq!(y.data(), &[-0.2, 0.5, 4.0]);
        let g = Tensor::from_vec(vec![3], vec![1.0, 1.0, 1.0]);
        let gi = lr.backward(&g, &mut s);
        assert_eq!(gi.data(), &[0.1, 1.0, 1.0]);
    }
}
