//! Evaluation metrics: classification accuracy and the token-accuracy BLEU
//! proxy for the sequence task.

use fast_tensor::{argmax, Tensor};

/// Fraction of rows whose argmax matches the label, in percent.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows.
pub fn accuracy_percent(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rank(), 2);
    let (rows, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), rows);
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        if argmax(&logits.data()[i * classes..(i + 1) * classes]) == label {
            correct += 1;
        }
    }
    100.0 * correct as f64 / rows as f64
}

/// Running mean helper for streaming evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Running {
    sum: f64,
    n: u64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds a value with a weight (e.g. batch size).
    pub fn add(&mut self, value: f64, weight: u64) {
        self.sum += value * weight as f64;
        self.n += weight;
    }

    /// The weighted mean (0 if nothing was added).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Total weight added.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![3, 2], vec![2.0, 1.0, 0.0, 3.0, 1.0, 0.0]);
        assert_eq!(accuracy_percent(&logits, &[0, 1, 1]), 100.0 * 2.0 / 3.0);
    }

    #[test]
    fn running_mean() {
        let mut r = Running::new();
        r.add(1.0, 2);
        r.add(4.0, 1);
        assert!((r.mean() - 2.0).abs() < 1e-12);
        assert_eq!(r.count(), 3);
    }
}
