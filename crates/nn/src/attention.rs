//! Multi-head self-attention for the transformer workload.
//!
//! The four projection layers (`Wq`, `Wk`, `Wv`, `Wo`) are quantized
//! [`Dense`] layers — the bulk of a transformer's GEMM work, and what the
//! FAST controller adapts. The attention-score computations (`QKᵀ` and
//! `attn·V`) run in FP32; they are a small fraction of the layer's MACs at
//! our sequence lengths (a deviation recorded in DESIGN.md §6).

use crate::layer::{Layer, Param, QuantControlled, Session};
use crate::linear::Dense;
use fast_tensor::Tensor;
use rand::Rng;

/// Multi-head self-attention over `(batch·seq, dim)` rows.
pub struct MultiHeadSelfAttention {
    wq: Dense,
    wk: Dense,
    wv: Dense,
    wo: Dense,
    heads: usize,
    seq_len: usize,
    dim: usize,
    cache: Option<AttnCache>,
}

struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention matrices, one `(seq, seq)` tensor per (batch, head).
    attn: Vec<Tensor>,
    batch: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an attention layer for fixed-length sequences.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, seq_len: usize, rng: &mut impl Rng) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadSelfAttention {
            wq: Dense::new(dim, dim, true, rng),
            wk: Dense::new(dim, dim, true, rng),
            wv: Dense::new(dim, dim, true, rng),
            wo: Dense::new(dim, dim, true, rng),
            heads,
            seq_len,
            dim,
            cache: None,
        }
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Copies the `(seq, head_dim)` block for (batch `b`, head `h`) out of a
    /// `(batch·seq, dim)` tensor.
    fn head_block(&self, t: &Tensor, b: usize, h: usize) -> Tensor {
        let dh = self.head_dim();
        let mut out = Tensor::zeros(vec![self.seq_len, dh]);
        for i in 0..self.seq_len {
            let row = (b * self.seq_len + i) * self.dim + h * dh;
            out.data_mut()[i * dh..(i + 1) * dh].copy_from_slice(&t.data()[row..row + dh]);
        }
        out
    }

    fn add_head_block(&self, t: &mut Tensor, block: &Tensor, b: usize, h: usize) {
        let dh = self.head_dim();
        for i in 0..self.seq_len {
            let row = (b * self.seq_len + i) * self.dim + h * dh;
            for j in 0..dh {
                t.data_mut()[row + j] += block.data()[i * dh + j];
            }
        }
    }
}

impl std::fmt::Debug for MultiHeadSelfAttention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MultiHeadSelfAttention(dim={}, heads={}, seq={})",
            self.dim, self.heads, self.seq_len
        )
    }
}

fn softmax_rows(t: &mut Tensor) {
    let cols = t.shape()[1];
    for row in t.data_mut().chunks_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2, "attention expects (batch·seq, dim) input");
        assert_eq!(input.shape()[1], self.dim);
        let rows = input.shape()[0];
        assert_eq!(rows % self.seq_len, 0, "rows must be a multiple of seq_len");
        let batch = rows / self.seq_len;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(input, session);
        let k = self.wk.forward(input, session);
        let v = self.wv.forward(input, session);

        let mut concat = Tensor::zeros(vec![rows, self.dim]);
        let mut attns = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = self.head_block(&q, b, h);
                let kb = self.head_block(&k, b, h);
                let vb = self.head_block(&v, b, h);
                let mut scores = fast_tensor::matmul_nt(&qb, &kb); // (T, T)
                scores.scale(scale);
                softmax_rows(&mut scores);
                let out = fast_tensor::matmul(&scores, &vb); // (T, dh)
                self.add_head_block(&mut concat, &out, b, h);
                attns.push(scores);
            }
        }
        let y = self.wo.forward(&concat, session);
        if session.train {
            self.cache = Some(AttnCache {
                q,
                k,
                v,
                attn: attns,
                batch,
            });
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let g_concat = self.wo.backward(grad_output, session);
        let cache = self
            .cache
            .take()
            .expect("attention backward before forward");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let rows = g_concat.shape()[0];

        let mut dq = Tensor::zeros(vec![rows, self.dim]);
        let mut dk = Tensor::zeros(vec![rows, self.dim]);
        let mut dv = Tensor::zeros(vec![rows, self.dim]);
        for b in 0..cache.batch {
            for h in 0..self.heads {
                let a = &cache.attn[b * self.heads + h]; // (T, T)
                let gb = self.head_block(&g_concat, b, h); // (T, dh)
                let vb = self.head_block(&cache.v, b, h);
                let qb = self.head_block(&cache.q, b, h);
                let kb = self.head_block(&cache.k, b, h);

                // dV = Aᵀ·g ; dA = g·Vᵀ
                let dvb = fast_tensor::matmul_tn(a, &gb);
                // (T, T)
                let mut da = fast_tensor::matmul_nt(&gb, &vb);
                // Softmax backward: dS = A ⊙ (dA − rowsum(dA ⊙ A)).
                let t = self.seq_len;
                for i in 0..t {
                    let mut dot = 0.0f32;
                    for j in 0..t {
                        dot += da.data()[i * t + j] * a.data()[i * t + j];
                    }
                    for j in 0..t {
                        let idx = i * t + j;
                        da.data_mut()[idx] = a.data()[idx] * (da.data()[idx] - dot);
                    }
                }
                da.scale(scale);
                // dQ = dS·K ; dK = dSᵀ·Q.
                let dqb = fast_tensor::matmul(&da, &kb);
                let dkb = fast_tensor::matmul_tn(&da, &qb);
                self.add_head_block(&mut dq, &dqb, b, h);
                self.add_head_block(&mut dk, &dkb, b, h);
                self.add_head_block(&mut dv, &dvb, b, h);
            }
        }
        let mut gx = self.wq.backward(&dq, session);
        gx.add_assign(&self.wk.backward(&dk, session));
        gx.add_assign(&self.wv.backward(&dv, session));
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        self.wq.visit_quant(f);
        self.wk.visit_quant(f);
        self.wv.visit_quant(f);
        self.wo.visit_quant(f);
    }

    fn kind(&self) -> &'static str {
        "mhsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_row_stochastic_attention() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut attn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![8, 8],
            (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let y = attn.forward(&x, &mut s);
        assert_eq!(y.shape(), &[8, 8]);
        let cache = attn.cache.as_ref().unwrap();
        for a in &cache.attn {
            for row in a.data().chunks(4) {
                let sum: f32 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "attention rows must sum to 1");
            }
        }
    }

    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut attn = MultiHeadSelfAttention::new(4, 2, 3, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let g = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = attn.forward(&x, &mut s);
        let gin = attn.backward(&g, &mut s);
        let eps = 1e-3f32;
        for idx in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = attn
                .forward(&xp, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = attn
                .forward(&xm, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {num} vs analytic {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn exposes_four_quant_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut attn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng);
        let mut n = 0;
        attn.visit_quant(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
