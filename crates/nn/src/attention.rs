//! Multi-head self-attention for the transformer workload.
//!
//! The four projection layers (`Wq`, `Wk`, `Wv`, `Wo`) are quantized
//! [`Dense`] layers — the bulk of a transformer's GEMM work, and what the
//! FAST controller adapts. The attention-score computations (`QKᵀ` and
//! `attn·V`, plus their backward counterparts) route through the shared
//! quantized-GEMM plan with their own configurable [`NumericFormat`]
//! ([`MultiHeadSelfAttention::set_inner_format`]); the default is FP32 —
//! they are a small fraction of the layer's MACs at our sequence lengths
//! (a deviation recorded in DESIGN.md §6), and FP32 operands are borrowed
//! by the plan with no quantization cost at all.

use crate::layer::{Layer, Param, QuantControlled, Session};
use crate::linear::Dense;
use crate::qgemm::{self, Orient};
use crate::quant::NumericFormat;
use fast_bfp::GroupAxis;
use fast_tensor::Tensor;
use rand::Rng;

/// Multi-head self-attention over `(batch·seq, dim)` rows.
pub struct MultiHeadSelfAttention {
    wq: Dense,
    wk: Dense,
    wv: Dense,
    wo: Dense,
    heads: usize,
    seq_len: usize,
    dim: usize,
    /// Format for the inner score/context GEMM operands (`q·kᵀ`, `attn·v`
    /// and their backward counterparts). FP32 preserves the historical
    /// behavior bit for bit.
    inner_format: NumericFormat,
    cache: Option<AttnCache>,
}

struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax attention matrices, one `(seq, seq)` tensor per (batch, head).
    attn: Vec<Tensor>,
    batch: usize,
}

impl MultiHeadSelfAttention {
    /// Creates an attention layer for fixed-length sequences.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, seq_len: usize, rng: &mut impl Rng) -> Self {
        assert!(
            dim.is_multiple_of(heads),
            "dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadSelfAttention {
            wq: Dense::new(dim, dim, true, rng),
            wk: Dense::new(dim, dim, true, rng),
            wv: Dense::new(dim, dim, true, rng),
            wo: Dense::new(dim, dim, true, rng),
            heads,
            seq_len,
            dim,
            inner_format: NumericFormat::Fp32,
            cache: None,
        }
    }

    /// Sets the numeric format of the inner score/context GEMMs (`q·kᵀ` and
    /// `attn·v`, forward and backward). Defaults to [`NumericFormat::Fp32`],
    /// which leaves the historical FP32 attention arithmetic untouched.
    pub fn set_inner_format(&mut self, fmt: NumericFormat) {
        self.inner_format = fmt;
    }

    /// Builder form of [`MultiHeadSelfAttention::set_inner_format`].
    pub fn with_inner_format(mut self, fmt: NumericFormat) -> Self {
        self.inner_format = fmt;
        self
    }

    /// The format the inner score/context GEMMs run under.
    pub fn inner_format(&self) -> NumericFormat {
        self.inner_format
    }

    fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Copies the `(seq, head_dim)` block for (batch `b`, head `h`) out of a
    /// `(batch·seq, dim)` tensor.
    fn head_block(&self, t: &Tensor, b: usize, h: usize) -> Tensor {
        let dh = self.head_dim();
        let mut out = Tensor::zeros(vec![self.seq_len, dh]);
        for i in 0..self.seq_len {
            let row = (b * self.seq_len + i) * self.dim + h * dh;
            out.data_mut()[i * dh..(i + 1) * dh].copy_from_slice(&t.data()[row..row + dh]);
        }
        out
    }

    fn add_head_block(&self, t: &mut Tensor, block: &Tensor, b: usize, h: usize) {
        let dh = self.head_dim();
        for i in 0..self.seq_len {
            let row = (b * self.seq_len + i) * self.dim + h * dh;
            for j in 0..dh {
                t.data_mut()[row + j] += block.data()[i * dh + j];
            }
        }
    }
}

impl std::fmt::Debug for MultiHeadSelfAttention {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MultiHeadSelfAttention(dim={}, heads={}, seq={})",
            self.dim, self.heads, self.seq_len
        )
    }
}

fn softmax_rows(t: &mut Tensor) {
    let cols = t.shape()[1];
    for row in t.data_mut().chunks_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2, "attention expects (batch·seq, dim) input");
        assert_eq!(input.shape()[1], self.dim);
        let rows = input.shape()[0];
        assert_eq!(rows % self.seq_len, 0, "rows must be a multiple of seq_len");
        let batch = rows / self.seq_len;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(input, session);
        let k = self.wk.forward(input, session);
        let v = self.wv.forward(input, session);

        let mut concat = Tensor::zeros(vec![rows, self.dim]);
        let mut attns = Vec::with_capacity(batch * self.heads);
        let inner = self.inner_format;
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = self.head_block(&q, b, h);
                let kb = self.head_block(&k, b, h);
                let vb = self.head_block(&v, b, h);
                // Scores `q·kᵀ` reduce over the head dim: both operands
                // group along their rows.
                let qq = qgemm::prepare(session, &qb, inner, GroupAxis::AlongRow);
                let kq = qgemm::prepare(session, &kb, inner, GroupAxis::AlongRow);
                let mut scores = qgemm::execute(session, Orient::Nt, &qq, &kq); // (T, T)
                drop((qq, kq));
                scores.scale(scale);
                softmax_rows(&mut scores);
                // Context `attn·v` reduces over T: attn rows, v columns.
                let sq = qgemm::prepare(session, &scores, inner, GroupAxis::AlongRow);
                let vq = qgemm::prepare(session, &vb, inner, GroupAxis::AlongCol);
                let out = qgemm::execute(session, Orient::Nn, &sq, &vq); // (T, dh)
                drop((sq, vq));
                self.add_head_block(&mut concat, &out, b, h);
                attns.push(scores);
            }
        }
        let y = self.wo.forward(&concat, session);
        if session.train {
            self.cache = Some(AttnCache {
                q,
                k,
                v,
                attn: attns,
                batch,
            });
        }
        y
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let g_concat = self.wo.backward(grad_output, session);
        let cache = self
            .cache
            .take()
            .expect("attention backward before forward");
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let rows = g_concat.shape()[0];

        let mut dq = Tensor::zeros(vec![rows, self.dim]);
        let mut dk = Tensor::zeros(vec![rows, self.dim]);
        let mut dv = Tensor::zeros(vec![rows, self.dim]);
        let inner = self.inner_format;
        for b in 0..cache.batch {
            for h in 0..self.heads {
                let a = &cache.attn[b * self.heads + h]; // (T, T)
                let gb = self.head_block(&g_concat, b, h); // (T, dh)
                let vb = self.head_block(&cache.v, b, h);
                let qb = self.head_block(&cache.q, b, h);
                let kb = self.head_block(&cache.k, b, h);

                // dV = Aᵀ·g ; dA = g·Vᵀ — both reduce over T.
                let aq = qgemm::prepare(session, a, inner, GroupAxis::AlongCol);
                let gq = qgemm::prepare(session, &gb, inner, GroupAxis::AlongCol);
                let dvb = qgemm::execute(session, Orient::Tn, &aq, &gq);
                drop((aq, gq));
                let gq2 = qgemm::prepare(session, &gb, inner, GroupAxis::AlongRow);
                let vq = qgemm::prepare(session, &vb, inner, GroupAxis::AlongRow);
                // (T, T)
                let mut da = qgemm::execute(session, Orient::Nt, &gq2, &vq);
                drop((gq2, vq));
                // Softmax backward: dS = A ⊙ (dA − rowsum(dA ⊙ A)).
                let t = self.seq_len;
                for i in 0..t {
                    let mut dot = 0.0f32;
                    for j in 0..t {
                        dot += da.data()[i * t + j] * a.data()[i * t + j];
                    }
                    for j in 0..t {
                        let idx = i * t + j;
                        da.data_mut()[idx] = a.data()[idx] * (da.data()[idx] - dot);
                    }
                }
                da.scale(scale);
                // dQ = dS·K ; dK = dSᵀ·Q.
                let daq = qgemm::prepare(session, &da, inner, GroupAxis::AlongRow);
                let kq = qgemm::prepare(session, &kb, inner, GroupAxis::AlongCol);
                let dqb = qgemm::execute(session, Orient::Nn, &daq, &kq);
                drop((daq, kq));
                let dac = qgemm::prepare(session, &da, inner, GroupAxis::AlongCol);
                let qq = qgemm::prepare(session, &qb, inner, GroupAxis::AlongCol);
                let dkb = qgemm::execute(session, Orient::Tn, &dac, &qq);
                drop((dac, qq));
                self.add_head_block(&mut dq, &dqb, b, h);
                self.add_head_block(&mut dk, &dkb, b, h);
                self.add_head_block(&mut dv, &dvb, b, h);
            }
        }
        let mut gx = self.wq.backward(&dq, session);
        gx.add_assign(&self.wk.backward(&dk, session));
        gx.add_assign(&self.wv.backward(&dv, session));
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        self.wq.visit_quant(f);
        self.wk.visit_quant(f);
        self.wv.visit_quant(f);
        self.wo.visit_quant(f);
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        for (scope, proj) in [
            ("wq", &mut self.wq),
            ("wk", &mut self.wk),
            ("wv", &mut self.wv),
            ("wo", &mut self.wo),
        ] {
            v.enter(scope);
            proj.visit_state(v);
            v.exit();
        }
        crate::quant::visit_format(v, "inner_format", &mut self.inner_format);
    }

    fn kind(&self) -> &'static str {
        "mhsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_row_stochastic_attention() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut attn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![8, 8],
            (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let y = attn.forward(&x, &mut s);
        assert_eq!(y.shape(), &[8, 8]);
        let cache = attn.cache.as_ref().unwrap();
        for a in &cache.attn {
            for row in a.data().chunks(4) {
                let sum: f32 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "attention rows must sum to 1");
            }
        }
    }

    #[test]
    fn gradient_check() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut attn = MultiHeadSelfAttention::new(4, 2, 3, &mut rng);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let g = Tensor::from_vec(
            vec![3, 4],
            (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let _ = attn.forward(&x, &mut s);
        let gin = attn.backward(&g, &mut s);
        let eps = 1e-3f32;
        for idx in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = attn
                .forward(&xp, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = attn
                .forward(&xm, &mut s)
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {num} vs analytic {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn quantized_inner_gemms_differ_but_track_fp32() {
        use crate::quant::NumericFormat;
        use fast_bfp::BfpFormat;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut fp = MultiHeadSelfAttention::new(8, 2, 4, &mut rng);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let mut qn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng2)
            .with_inner_format(NumericFormat::bfp_nearest(BfpFormat::high()));
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![8, 8],
            (0..64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let y_fp = fp.forward(&x, &mut Session::eval(0));
        let y_q = qn.forward(&x, &mut Session::eval(0));
        assert_ne!(y_fp, y_q, "inner quantization must alter the output");
        let rel: f64 = y_fp
            .data()
            .iter()
            .zip(y_q.data())
            .map(|(a, b)| ((a - b) as f64).abs())
            .sum::<f64>()
            / y_fp.data().iter().map(|&v| (v as f64).abs()).sum::<f64>();
        assert!(rel < 0.25, "HighBFP inner GEMMs should track FP32: {rel}");
        // The backward pass still satisfies the finite-difference check
        // under FP32 inner format (pinned by `gradient_check`); here pin
        // that quantized inner GEMMs are metered through the plan.
        let mut s = Session::eval(0);
        let before = s.plan_stats;
        let _ = qn.forward(&x, &mut s);
        // 4 projections + 2 inner GEMMs per (batch=2 × heads=2) block.
        assert_eq!(s.plan_stats.gemms - before.gemms, 4 + 2 * 4);
        assert!(s.plan_stats.quant.groups > 0, "inner operands quantized");
    }

    #[test]
    fn exposes_four_quant_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut attn = MultiHeadSelfAttention::new(8, 2, 4, &mut rng);
        let mut n = 0;
        attn.visit_quant(&mut |_| n += 1);
        assert_eq!(n, 4);
    }
}
