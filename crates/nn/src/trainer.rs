//! The training loop with precision-controller hooks.
//!
//! [`Trainer`] owns a model, an optimizer and a [`Session`]; experiment code
//! drives it batch by batch. A [`TrainHook`] is invoked around each
//! iteration — the FAST-Adaptive controller (in `fast-core`) is one such
//! hook, as are the static schedules of paper Fig 9 and the cost meters
//! behind Fig 19/20.

use crate::layer::{Layer, Session};
use crate::loss::softmax_cross_entropy;
use crate::metrics::accuracy_percent;
use crate::model::Sequential;
use crate::optim::Sgd;
use fast_ckpt::{
    capture_state, restore_state, Artifact, CkptError, StateDict, StateVisitor, VisitState,
    SECTION_HOOK, SECTION_META, SECTION_MODEL, SECTION_OPTIMIZER, SECTION_SESSION,
};
use fast_tensor::Tensor;
use std::path::Path;

/// Observer/controller invoked around each training iteration.
pub trait TrainHook {
    /// Called before the forward pass of iteration `iter` (0-based).
    fn before_iteration(&mut self, iter: usize, model: &mut Sequential) {
        let _ = (iter, model);
    }
    /// Called after the backward pass, before the optimizer step.
    fn after_backward(&mut self, iter: usize, model: &mut Sequential) {
        let _ = (iter, model);
    }
    /// Whether this hook reads per-layer sensitivity tensors
    /// (`QuantControlled::last_grad_output`). [`Trainer`] copies the answer
    /// into [`Session::record_sensitivity`] each step, so plain training
    /// (the default `false`) skips the per-layer `grad_output` clone that
    /// only precision controllers consume.
    ///
    /// [`Session::record_sensitivity`]: crate::Session
    fn wants_sensitivity(&self) -> bool {
        false
    }
}

/// A hook that does nothing (plain training).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;
impl TrainHook for NoopHook {}

/// One training step's outcome, returned by [`Trainer::step_classification`]
/// and [`Trainer::step_custom`].
///
/// The loss is recorded *before* the optimizer step of the same iteration,
/// so plotting `loss` against `iter` gives the conventional training curve
/// (the value the controller hooks also observe).
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// 0-based iteration index of the step that produced these stats.
    pub iter: usize,
    /// Mean loss over the batch (cross-entropy for
    /// [`Trainer::step_classification`]; whatever the closure returned for
    /// [`Trainer::step_custom`]).
    pub loss: f64,
}

/// Owns the pieces of a training run.
///
/// ```
/// use fast_nn::{Dense, Relu, Sequential, Sgd, NoopHook, Trainer};
/// use fast_tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = Sequential::new()
///     .push(Dense::new(2, 8, true, &mut rng))
///     .push(Relu::new())
///     .push(Dense::new(8, 2, true, &mut rng));
/// let mut trainer = Trainer::new(model, Sgd::new(0.1, 0.9, 0.0), 0);
/// let x = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 1.0, 0.0]);
/// let stats = trainer.step_classification(&x, &[1, 0], &mut NoopHook);
/// assert_eq!(stats.iter, 0);
/// assert!(stats.loss.is_finite());
/// assert_eq!(trainer.iterations(), 1);
/// ```
pub struct Trainer {
    /// The model being trained.
    pub model: Sequential,
    /// The optimizer.
    pub opt: Sgd,
    /// Forward/backward session (RNG for stochastic rounding).
    pub session: Session,
    iter: usize,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(model: Sequential, opt: Sgd, seed: u64) -> Self {
        Trainer {
            model,
            opt,
            session: Session::new(seed),
            iter: 0,
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn iterations(&self) -> usize {
        self.iter
    }

    /// Runs one cross-entropy training step on `(inputs, labels)` with the
    /// given hook.
    pub fn step_classification(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        hook: &mut dyn TrainHook,
    ) -> StepStats {
        let _span = fast_telemetry::span!("train.step");
        hook.before_iteration(self.iter, &mut self.model);
        self.session.train = true;
        self.session.record_sensitivity = hook.wants_sensitivity();
        let logits = self.model.forward(inputs, &mut self.session);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        self.model.backward(&grad, &mut self.session);
        hook.after_backward(self.iter, &mut self.model);
        self.opt.step(&mut self.model);
        let stats = StepStats {
            iter: self.iter,
            loss,
        };
        self.iter += 1;
        crate::telemetry::note_train_step(loss, self.iter as u64, self.session.sr_state().1);
        stats
    }

    /// Runs one training step with a custom loss: `loss_fn` maps the model
    /// output to `(loss, grad_wrt_output)`.
    pub fn step_custom(
        &mut self,
        inputs: &Tensor,
        loss_fn: &mut dyn FnMut(&Tensor) -> (f64, Tensor),
        hook: &mut dyn TrainHook,
    ) -> StepStats {
        let _span = fast_telemetry::span!("train.step");
        hook.before_iteration(self.iter, &mut self.model);
        self.session.train = true;
        self.session.record_sensitivity = hook.wants_sensitivity();
        let out = self.model.forward(inputs, &mut self.session);
        let (loss, grad) = loss_fn(&out);
        self.model.backward(&grad, &mut self.session);
        hook.after_backward(self.iter, &mut self.model);
        self.opt.step(&mut self.model);
        let stats = StepStats {
            iter: self.iter,
            loss,
        };
        self.iter += 1;
        crate::telemetry::note_train_step(loss, self.iter as u64, self.session.sr_state().1);
        stats
    }

    /// Captures the full training state as a checkpoint [`Artifact`]:
    /// model parameters/buffers/formats (`model` section), optimizer slots
    /// (`optimizer`), session RNG + plan counters (`session`) and the
    /// iteration count (`meta`). Pass the precision controller (or any
    /// other stateful hook) as `hook_state` to ride along in the `hook`
    /// section (DESIGN.md §10).
    ///
    /// Checkpoints are taken at step boundaries — after an optimizer step,
    /// before the next `step_*` call — where gradient accumulators are zero
    /// and the captured state is exactly what the next iteration reads. A
    /// run resumed from the artifact continues **bit-identically** to an
    /// uninterrupted one (`tests/determinism.rs`).
    pub fn checkpoint(&mut self, hook_state: Option<&mut dyn VisitState>) -> Artifact {
        let mut artifact = Artifact::new();
        let mut meta = TrainerMeta {
            iterations: self.iter as u64,
        };
        artifact.insert(SECTION_META, capture_state(&mut meta).to_bytes());
        artifact.insert(SECTION_MODEL, capture_state(&mut self.model).to_bytes());
        artifact.insert(SECTION_OPTIMIZER, capture_state(&mut self.opt).to_bytes());
        artifact.insert(SECTION_SESSION, capture_state(&mut self.session).to_bytes());
        if let Some(hook) = hook_state {
            artifact.insert(SECTION_HOOK, capture_state(hook).to_bytes());
        }
        artifact
    }

    /// [`Trainer::checkpoint`] written straight to a file.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] if the file cannot be written.
    pub fn save_checkpoint<P: AsRef<Path>>(
        &mut self,
        path: P,
        hook_state: Option<&mut dyn VisitState>,
    ) -> Result<(), CkptError> {
        self.checkpoint(hook_state).save(path)
    }

    /// Rebuilds a trainer from a checkpoint artifact.
    ///
    /// `model` and `opt` supply the *architecture* and configuration —
    /// construct them exactly as the original run did (any RNG used for
    /// initialization is about to be overwritten, so the seed does not
    /// matter); the artifact supplies every tensor, counter and RNG word.
    /// Pass the freshly constructed controller as `hook_state` to restore
    /// its `hook` section too. Restoration is strict: missing or extra
    /// entries, kind/shape mismatches and malformed encodings are typed
    /// errors, and the partially-written trainer is discarded.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] from section decoding or state restoration.
    pub fn resume(
        model: Sequential,
        opt: Sgd,
        artifact: &Artifact,
        hook_state: Option<&mut dyn VisitState>,
    ) -> Result<Trainer, CkptError> {
        let mut trainer = Trainer::new(model, opt, 0);
        let mut meta = TrainerMeta { iterations: 0 };
        restore_state(
            &mut meta,
            &StateDict::from_bytes(artifact.require(SECTION_META)?)?,
        )?;
        trainer.iter = meta.iterations as usize;
        restore_state(
            &mut trainer.model,
            &StateDict::from_bytes(artifact.require(SECTION_MODEL)?)?,
        )?;
        restore_state(
            &mut trainer.opt,
            &StateDict::from_bytes(artifact.require(SECTION_OPTIMIZER)?)?,
        )?;
        let session_dict = StateDict::from_bytes(artifact.require(SECTION_SESSION)?)?;
        // The session's RNG entries are mode-dependent (DESIGN.md §12):
        // counter-mode artifacts carry `sr_seed`/`sr_step`, sequential ones
        // the four xoshiro words. Peek the key set so the restore below
        // visits the entries the artifact actually holds — artifacts are
        // self-describing, and pre-counter artifacts restore unchanged.
        trainer.session.sr_mode = if session_dict.get("sr_seed").is_some() {
            crate::SrMode::Counter
        } else {
            crate::SrMode::Lfsr
        };
        restore_state(&mut trainer.session, &session_dict)?;
        if let Some(hook) = hook_state {
            restore_state(
                hook,
                &StateDict::from_bytes(artifact.require(SECTION_HOOK)?)?,
            )?;
        }
        Ok(trainer)
    }

    /// [`Trainer::resume`] reading the artifact from a file.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] from reading, decoding or restoring.
    pub fn resume_from_path<P: AsRef<Path>>(
        model: Sequential,
        opt: Sgd,
        path: P,
        hook_state: Option<&mut dyn VisitState>,
    ) -> Result<Trainer, CkptError> {
        Trainer::resume(model, opt, &Artifact::load(path)?, hook_state)
    }

    /// Evaluates classification accuracy (%) over a set of batches.
    pub fn evaluate_classification(&mut self, batches: &[(Tensor, Vec<usize>)]) -> f64 {
        self.session.train = false;
        let mut correct_weighted = 0.0f64;
        let mut total = 0usize;
        for (x, labels) in batches {
            let logits = self.model.forward(x, &mut self.session);
            let acc = accuracy_percent(&logits, labels);
            correct_weighted += acc * labels.len() as f64;
            total += labels.len();
        }
        self.session.train = true;
        if total == 0 {
            0.0
        } else {
            correct_weighted / total as f64
        }
    }
}

/// The `meta` section payload: loop-level counters.
struct TrainerMeta {
    iterations: u64,
}

impl VisitState for TrainerMeta {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        v.scalar_u64("iterations", &mut self.iterations);
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Trainer(iter={}, model={:?})", self.iter, self.model)
    }
}

/// Compact progress line for logs: the step count and the model's layer
/// count, e.g. `trainer @ iter 42 (5 layers)`.
impl std::fmt::Display for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trainer @ iter {} ({} layers)",
            self.iter,
            self.model.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Relu;
    use crate::linear::Dense;
    use rand::SeedableRng;

    #[test]
    fn trainer_learns_xor_like_task() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let model = Sequential::new()
            .push(Dense::new(2, 16, true, &mut rng))
            .push(Relu::new())
            .push(Dense::new(16, 2, true, &mut rng));
        let mut trainer = Trainer::new(model, Sgd::new(0.1, 0.9, 0.0), 0);
        let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = vec![0usize, 1, 1, 0];
        let mut hook = NoopHook;
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            last = trainer.step_classification(&x, &y, &mut hook).loss;
        }
        assert!(last < 0.05, "XOR loss {last}");
        let acc = trainer.evaluate_classification(&[(x, y)]);
        assert_eq!(acc, 100.0);
    }

    #[test]
    fn hooks_fire_in_order() {
        #[derive(Default)]
        struct Recorder {
            events: Vec<&'static str>,
        }
        impl TrainHook for Recorder {
            fn before_iteration(&mut self, _i: usize, _m: &mut Sequential) {
                self.events.push("before");
            }
            fn after_backward(&mut self, _i: usize, _m: &mut Sequential) {
                self.events.push("after");
            }
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let model = Sequential::new().push(Dense::new(2, 2, true, &mut rng));
        let mut trainer = Trainer::new(model, Sgd::new(0.01, 0.0, 0.0), 0);
        let mut rec = Recorder::default();
        let x = Tensor::zeros(vec![1, 2]);
        trainer.step_classification(&x, &[0], &mut rec);
        trainer.step_classification(&x, &[1], &mut rec);
        assert_eq!(rec.events, vec!["before", "after", "before", "after"]);
        assert_eq!(trainer.iterations(), 2);
        assert_eq!(format!("{trainer}"), "trainer @ iter 2 (1 layers)");
    }
}
