//! The layer abstraction: forward/backward with explicit state, parameter
//! visitation for optimizers, and quantization control for the FAST
//! controller.

use crate::qgemm::PlanStats;
use crate::quant::LayerPrecision;
use fast_bfp::{BitSource, CounterRng, QuantStats, RngBits, SrMode};
use fast_ckpt::{StateVisitor, VisitState};
use fast_tensor::{ExecMode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-run context threaded through forward/backward passes.
///
/// Owns the random bit source used by stochastic rounding so runs are
/// reproducible from a single seed, and the [`PlanStats`] counters that
/// every GEMM routed through the [`crate::qgemm`] plan accumulates into.
#[derive(Debug)]
pub struct Session {
    /// Whether layers should behave in training mode (batch-norm statistics,
    /// activation caching for backward, …).
    pub train: bool,
    /// Whether weight-bearing layers may serve quantized weights from their
    /// frozen-weight caches instead of re-quantizing the FP32 masters on
    /// every forward pass (DESIGN.md §8). Off for training — Algorithm 1
    /// changes per-layer formats between iterations — and on for serving,
    /// where weights and formats are frozen. Caches are invalidated by any
    /// weight update, so flipping this flag mid-run is always safe.
    pub freeze_weights: bool,
    /// Whether GEMM layers keep sensitivity tensors (a clone of each
    /// backward pass's `grad_output`) for [`QuantControlled`] readers. The
    /// FAST controller and the exponent-distribution experiments need them;
    /// plain training does not, and skips the per-layer copy. [`Trainer`]
    /// sets this from [`TrainHook::wants_sensitivity`] every step.
    ///
    /// [`Trainer`]: crate::Trainer
    /// [`TrainHook::wants_sensitivity`]: crate::TrainHook::wants_sensitivity
    pub record_sensitivity: bool,
    /// Counters accumulated by the quantized-GEMM execution plan: GEMM and
    /// MAC counts plus fused [`QuantStats`] from operand preparation — the
    /// single software-side instrumentation point (DESIGN.md §9).
    pub plan_stats: PlanStats,
    /// How packed×packed GEMMs routed through [`crate::qgemm::execute`]
    /// run: the bit-exact replay path (the default) or the integer-domain
    /// kernels of DESIGN.md §11. Layers may override it per layer via
    /// [`QuantControlled::exec_mode_mut`]. Like the mode flags above this is
    /// *not* checkpoint state — a training loop (or serving compile)
    /// reasserts it; see [`Session::default_exec_mode`] for the
    /// `FAST_QGEMM_MODE` environment override.
    pub exec_mode: ExecMode,
    /// Which stochastic-rounding noise source the quantized-GEMM plan draws
    /// from: the sequential LFSR-seeded stream (the default, bit-exact with
    /// every artifact recorded so far) or the counter-based source of
    /// DESIGN.md §12, whose draws are a pure function of `(seed, element
    /// offset)` and therefore order-independent and shardable. Layers may
    /// override it per layer via [`QuantControlled::sr_mode_mut`]. Unlike
    /// [`Session::exec_mode`] the choice *is* reflected in checkpoints —
    /// the artifact's RNG section self-describes which mode produced it —
    /// but new sessions start from [`Session::default_sr_mode`].
    pub sr_mode: SrMode,
    bits: RngBits<StdRng>,
    /// Seed of the counter-mode noise source (the session seed verbatim).
    sr_seed: u64,
    /// Next unclaimed counter-noise position; each SR-BFP operand the plan
    /// prepares reserves `rows × cols` positions. Together with `sr_seed`
    /// this is the *entire* counter-mode RNG state a checkpoint carries.
    sr_cursor: u64,
}

impl Session {
    /// Creates a training session with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Session {
            train: true,
            freeze_weights: false,
            record_sensitivity: false,
            plan_stats: PlanStats::default(),
            exec_mode: Session::default_exec_mode(),
            sr_mode: Session::default_sr_mode(),
            bits: RngBits(StdRng::seed_from_u64(seed)),
            sr_seed: seed,
            sr_cursor: 0,
        }
    }

    /// The process-wide default [`SrMode`] for new sessions:
    /// [`SrMode::Counter`] when the `FAST_SR_MODE` environment variable is
    /// set to `counter` (the CI lever that forces the whole gate suite
    /// through the counter-based noise source), [`SrMode::Lfsr`] otherwise —
    /// the sequential stream stays the default for fidelity with the paper's
    /// LFSR converter and with previously recorded artifacts.
    pub fn default_sr_mode() -> SrMode {
        static ENV: std::sync::OnceLock<SrMode> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("FAST_SR_MODE").as_deref() {
            Ok("counter") => SrMode::Counter,
            _ => SrMode::Lfsr,
        })
    }

    /// The process-wide default [`ExecMode`] for new sessions:
    /// [`ExecMode::Integer`] when the `FAST_QGEMM_MODE` environment variable
    /// is set to `integer` (the CI lever that forces the whole gate suite
    /// through the integer-domain kernels), [`ExecMode::Replay`] otherwise.
    pub fn default_exec_mode() -> ExecMode {
        static ENV: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("FAST_QGEMM_MODE").as_deref() {
            Ok("integer") => ExecMode::Integer,
            _ => ExecMode::Replay,
        })
    }

    /// Creates an evaluation session: no training-mode caching, but weights
    /// are still re-quantized on every forward pass (the path used for
    /// mid-training validation, where the controller may change formats).
    pub fn eval(seed: u64) -> Self {
        Session {
            train: false,
            ..Session::new(seed)
        }
    }

    /// Creates an inference-serving session: evaluation behavior plus
    /// frozen-weight caching — each layer quantizes its weights once and
    /// replays the cached copy on every subsequent request (DESIGN.md §8).
    pub fn inference(seed: u64) -> Self {
        Session {
            train: false,
            freeze_weights: true,
            ..Session::new(seed)
        }
    }

    /// The stochastic-rounding bit source, type-erased.
    pub fn bits(&mut self) -> &mut dyn BitSource {
        &mut self.bits
    }

    /// The stochastic-rounding bit source with its concrete type, so layer
    /// hot paths monomorphize the quantization kernels (no virtual call per
    /// stochastic draw; see `fast_bfp::kernel`).
    pub fn rng(&mut self) -> &mut RngBits<StdRng> {
        &mut self.bits
    }

    /// Split borrow for the plan: the bit source and the fused quantization
    /// counters, simultaneously.
    pub(crate) fn quant_parts(&mut self) -> (&mut RngBits<StdRng>, &mut QuantStats) {
        (&mut self.bits, &mut self.plan_stats.quant)
    }

    /// The counter-mode noise source of this session. Draws are a pure
    /// function of `(seed, position)`, so the returned value is `Copy` and
    /// never needs to be handed back.
    pub fn counter_rng(&self) -> CounterRng {
        CounterRng::new(self.sr_seed)
    }

    /// Claims the next `n` counter-noise positions, returning the base
    /// offset of the claimed range. The quantized-GEMM plan reserves one
    /// position per element of every stochastically rounded BFP operand, so
    /// distinct operands never share noise and a resumed run continues the
    /// reservation sequence exactly where the checkpoint left it.
    pub(crate) fn reserve_sr(&mut self, n: u64) -> u64 {
        let base = self.sr_cursor;
        self.sr_cursor = self.sr_cursor.wrapping_add(n);
        base
    }

    /// The counter-mode RNG state `(seed, cursor)` — everything a bit-exact
    /// resume needs under [`SrMode::Counter`] (DESIGN.md §12).
    pub fn sr_state(&self) -> (u64, u64) {
        (self.sr_seed, self.sr_cursor)
    }

    /// Restores the counter-mode RNG to a [`Session::sr_state`] snapshot.
    pub fn set_sr_state(&mut self, seed: u64, cursor: u64) {
        self.sr_seed = seed;
        self.sr_cursor = cursor;
    }

    /// The raw state of the stochastic-rounding generator, for exact
    /// checkpoint/resume (the xoshiro256** words of the session RNG).
    pub fn rng_state(&self) -> [u64; 4] {
        self.bits.0.state()
    }

    /// Restores the stochastic-rounding generator to a [`Session::rng_state`]
    /// snapshot, so the next draw continues the recorded stream exactly.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (never produced by a real generator).
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.bits.0 = StdRng::from_state(state);
    }
}

/// The session state that determines a training trajectory: the
/// stochastic-rounding RNG state plus the cumulative plan counters (so a
/// resumed run reports the same totals as an uninterrupted one). The
/// `train`/`freeze_weights`/`record_sensitivity` flags are *not* state —
/// the training loop reasserts them every step.
///
/// The RNG entries depend on [`Session::sr_mode`]: the sequential mode
/// writes the four xoshiro256** words (`rng0..rng3`), the counter mode just
/// `sr_seed`/`sr_step` — the whole generator is a pure function of those
/// two. The key names therefore make artifacts self-describing:
/// [`crate::Trainer::resume`] restores whichever mode the artifact was
/// recorded under, so old sequential-mode artifacts keep restoring
/// unchanged.
impl VisitState for Session {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        match self.sr_mode {
            SrMode::Lfsr => {
                let mut rng = self.rng_state();
                v.scalar_u64("rng0", &mut rng[0]);
                v.scalar_u64("rng1", &mut rng[1]);
                v.scalar_u64("rng2", &mut rng[2]);
                v.scalar_u64("rng3", &mut rng[3]);
                // A live xoshiro256** generator is never all-zero, so an
                // artifact carrying four zero words is corrupt — report it
                // through the visitor (a typed error on restore) instead of
                // letting `set_rng_state` assert.
                if rng.iter().any(|&w| w != 0) {
                    self.set_rng_state(rng);
                } else {
                    v.invalid("rng0", "all-zero RNG state".to_string());
                }
            }
            SrMode::Counter => {
                v.scalar_u64("sr_seed", &mut self.sr_seed);
                v.scalar_u64("sr_step", &mut self.sr_cursor);
            }
        }
        v.scalar_u64("plan_gemms", &mut self.plan_stats.gemms);
        v.scalar_u64("plan_macs", &mut self.plan_stats.macs);
        let mut groups = self.plan_stats.quant.groups as u64;
        v.scalar_u64("quant_groups", &mut groups);
        self.plan_stats.quant.groups = groups as usize;
        v.scalar_u64("quant_saturated", &mut self.plan_stats.quant.saturated);
        v.scalar_u64("quant_zeros", &mut self.plan_stats.quant.zeros);
    }
}

/// A mutable view of one parameter tensor and its gradient accumulator.
pub struct Param<'a> {
    /// The parameter values (FP32 master copy).
    pub value: &'a mut Tensor,
    /// The accumulated gradient for the current step.
    pub grad: &'a mut Tensor,
    /// Whether weight decay applies (true for weights, false for
    /// biases/norm parameters, following common practice).
    pub decay: bool,
}

/// Forward GEMM dimensions of a quantized layer, `(M, K, N)` with
/// `O (M×N) = A (M×K) · W (K×N)` — the quantities the systolic-array cycle
/// model consumes (paper Fig 3's matrix view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Output rows (batch × positions).
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Output columns (output features/channels).
    pub n: usize,
}

impl GemmShape {
    /// Multiply-accumulate count of the forward GEMM.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// Interface exposed by GEMM-bearing layers to the FAST precision
/// controller (paper Algorithm 1 reads `A_l, W_l, G_l` and writes the
/// layer's BFP precision).
pub trait QuantControlled {
    /// Mutable access to the layer's (W, A, G) format assignment.
    fn precision_mut(&mut self) -> &mut LayerPrecision;
    /// Per-layer [`ExecMode`] override: `Some(mode)` pins this layer's
    /// GEMMs to `mode`, `None` (the default) inherits
    /// [`Session::exec_mode`]. Like the session flag this is asserted by
    /// the run, not carried in checkpoints — an artifact restored on a
    /// machine without AVX2 must not smuggle in an execution-mode choice.
    fn exec_mode_mut(&mut self) -> &mut Option<ExecMode>;
    /// Per-layer [`SrMode`] override: `Some(mode)` pins this layer's
    /// stochastic-rounding noise source, `None` (the default) inherits
    /// [`Session::sr_mode`]. A run-configuration knob like the exec-mode
    /// override above, not checkpoint state.
    fn sr_mode_mut(&mut self) -> &mut Option<SrMode>;
    /// The current format assignment.
    fn precision(&self) -> LayerPrecision;
    /// The FP32 master weights.
    fn weight(&self) -> &Tensor;
    /// The FP32 input activations of the most recent forward pass, if any.
    fn last_input(&self) -> Option<&Tensor>;
    /// The FP32 output gradients of the most recent backward pass, if any.
    fn last_grad_output(&self) -> Option<&Tensor>;
    /// Forward GEMM dims of the most recent batch, if a pass has run.
    fn gemm_shape(&self) -> Option<GemmShape>;
    /// Short description, e.g. `conv3x3(16->32)`.
    fn label(&self) -> String;
}

/// A neural-network layer with explicit forward/backward state.
///
/// Layers own their parameters, caches, and gradients. `backward` consumes
/// the cached forward state and returns the gradient w.r.t. the layer
/// input; parameter gradients are *accumulated* internally until an
/// optimizer step visits them.
///
/// `Send` is a supertrait so whole models can move across threads — the
/// serving engine hands each worker thread its own model replica
/// (DESIGN.md §8). Layers are plain tensor data, so this costs nothing.
pub trait Layer: Send {
    /// Runs the layer on `input`, caching whatever backward needs when
    /// `session.train` is set.
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor;

    /// Propagates `grad_output` back through the layer, returning the
    /// gradient w.r.t. the forward input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before a training-mode forward pass.
    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor;

    /// Visits all trainable parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        let _ = f;
    }

    /// Visits all quantization-controlled (GEMM) sublayers in execution
    /// order — the layer indexing used by Algorithm 1.
    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        let _ = f;
    }

    /// Walks the layer's trajectory-determining state under stable names:
    /// parameters *and* everything else a bit-exact resume needs —
    /// persistent buffers (batch-norm running statistics), the per-layer
    /// precision assignment, and the sensitivity caches the FAST controller
    /// reads at the top of the next iteration (DESIGN.md §10).
    ///
    /// Extends [`Layer::visit_params`] (which enumerates anonymous
    /// value/grad pairs for optimizers) with names and shapes so state can
    /// round-trip through `fast_ckpt` artifacts. Stateless layers keep the
    /// default no-op. Implementations that hand out mutable weight access
    /// must invalidate their frozen-weight caches, exactly as
    /// `visit_params` does.
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        let _ = v;
    }

    /// A short kind tag, e.g. `"dense"`.
    fn kind(&self) -> &'static str;
}

/// Convenience: total number of scalar parameters in a layer tree.
pub fn parameter_count(layer: &mut dyn Layer) -> usize {
    let mut count = 0usize;
    layer.visit_params(&mut |p| count += p.value.numel());
    count
}

/// Convenience: number of quantization-controlled layers in a layer tree.
pub fn quant_layer_count(layer: &mut dyn Layer) -> usize {
    let mut count = 0usize;
    layer.visit_quant(&mut |_| count += 1);
    count
}

/// Sets every quantized layer in the tree to the same precision.
pub fn set_uniform_precision(layer: &mut dyn Layer, precision: LayerPrecision) {
    layer.visit_quant(&mut |q| *q.precision_mut() = precision);
}

/// Sets every quantized layer's [`ExecMode`] override: `Some(mode)` pins
/// the layers regardless of [`Session::exec_mode`], `None` restores
/// session-controlled execution. The per-layer knob exists because the
/// integer-domain mode is an *accuracy* decision per layer (DESIGN.md §11),
/// not just a speed switch — e.g. keep a sensitive head on
/// [`ExecMode::Replay`] while the backbone runs integer.
pub fn set_exec_mode(layer: &mut dyn Layer, mode: Option<ExecMode>) {
    layer.visit_quant(&mut |q| *q.exec_mode_mut() = mode);
}

/// Sets every quantized layer's [`SrMode`] override: `Some(mode)` pins the
/// layers' stochastic-rounding noise source regardless of
/// [`Session::sr_mode`], `None` restores session-controlled selection. The
/// per-layer knob mirrors [`set_exec_mode`]: e.g. keep one layer on the
/// sequential LFSR stream for an apples-to-apples ablation while the rest
/// of the model draws counter noise.
pub fn set_sr_mode(layer: &mut dyn Layer, mode: Option<SrMode>) {
    layer.visit_quant(&mut |q| *q.sr_mode_mut() = mode);
}

/// Collects `(label, precision)` for every quantized layer.
pub fn collect_precisions(layer: &mut dyn Layer) -> Vec<(String, LayerPrecision)> {
    let mut out = Vec::new();
    layer.visit_quant(&mut |q| out.push((q.label(), q.precision())));
    out
}
