//! The shared quantized-GEMM execution plan.
//!
//! Every GEMM a layer runs — forward, both backward orientations, the
//! frozen serving path, and attention's inner score/context products — is
//! expressed as *prepare the two operands, then execute one orientation*:
//!
//! 1. [`prepare`] / [`prepare_owned`] / [`prepare_slice`] quantize one
//!    operand according to its [`NumericFormat`], choosing the cheapest
//!    faithful representation: FP32 operands are **borrowed** (no copy at
//!    all), packable BFP operands become a [`PackedMat`] (integer `i8`
//!    mantissas + per-group scales, no dequantized f32 copy), and
//!    everything else falls back to a quantized dense copy.
//! 2. [`execute`] multiplies the prepared operands with the packed-operand
//!    kernels of `fast_tensor::qgemm`, under the session's [`ExecMode`]
//!    ([`execute_with`] takes an explicit one).
//!
//! Under the default [`ExecMode::Replay`] the composition is
//! **bit-identical** to the historical `quantize_copy` +
//! `matmul{,_nt,_tn,_bt}` pipeline for every format, rounding mode and
//! input (pinned by `crates/nn/tests/proptests.rs`; argument in DESIGN.md
//! §9), while skipping up to two full f32 tensor materializations per GEMM.
//! [`ExecMode::Integer`] trades that bit identity for integer-domain
//! execution of eligible packed×packed pairs — `i8×i8→i32` mantissa dot
//! products, the paper's actual cost model — gated by its own accuracy
//! proptests (`crates/nn/tests/integer_mode.rs`, DESIGN.md §11).
//!
//! Operand preparation likewise honors the resolved [`SrMode`]: under
//! [`SrMode::Counter`] every stochastically rounded BFP operand reserves
//! `rows × cols` positions of the session's counter noise stream and
//! quantizes order-independently — shardable across worker threads with
//! bit-identical results (DESIGN.md §12) — while the default sequential
//! mode replays the historical LFSR-stream draws bit for bit.
//!
//! [`execute`] is also the system's single software instrumentation point:
//! it accumulates GEMM/MAC counts and fused [`QuantStats`] into
//! [`Session::plan_stats`], next to the [`QuantControlled`] state the FAST
//! controller reads and the [`GemmShape`]s the hardware cost meter consumes.
//!
//! [`QuantControlled`]: crate::QuantControlled
//! [`GemmShape`]: crate::GemmShape

use crate::layer::Session;
use crate::quant::NumericFormat;
use fast_bfp::kernel::fake_quantize_matrix_counter;
use fast_bfp::packed::{pack_matrix_counter, pack_matrix_with};
use fast_bfp::{BitSource, CounterRng, GroupAxis, QuantStats, Rounding, SrMode};
use fast_tensor::qgemm::{
    qmatmul_bt_ex, qmatmul_ex, qmatmul_nt_ex, qmatmul_tn_ex, ExecMode, Operand, PackLayout,
    PackedMat,
};
use fast_tensor::Tensor;

/// Counters accumulated by every plan execution (one instance lives on
/// [`Session`]): how much GEMM work ran and what quantization did to the
/// operands feeding it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// GEMMs executed through the plan.
    pub gemms: u64,
    /// Multiply-accumulates across those GEMMs (`m · k · n` each).
    pub macs: u64,
    /// Fused quantization counters from operand preparation.
    pub quant: QuantStats,
}

/// GEMM orientation — which dense kernel's arithmetic the execution
/// replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orient {
    /// `C = A·B` (forward GEMMs).
    Nn,
    /// `C = A·Bᵀ`, `B` stored `n×k` (`∇A = ∇O·Wᵀ`, attention scores).
    Nt,
    /// `C = Aᵀ·B`, `A` stored `k×m` (`∇W = Aᵀ·∇O`).
    Tn,
    /// `C = A·B` with `B` supplied pre-transposed `n×k`, replaying the NN
    /// kernel's trees (the narrow-GEMM serving path over `im2row` patches).
    Bt,
}

/// An owned, reusable quantized operand — what frozen-weight caches hold.
#[derive(Debug, Clone)]
pub enum Prepared {
    /// A quantized (or FP32) dense tensor.
    Dense(Tensor),
    /// A packed-BFP matrix: `i8` mantissas plus per-group scales.
    Packed(PackedMat),
}

impl Prepared {
    /// A kernel-facing view of this operand.
    pub fn operand(&self) -> Operand<'_> {
        match self {
            Prepared::Dense(t) => Operand::Dense(t),
            Prepared::Packed(p) => Operand::Packed(p),
        }
    }

    /// The dense tensor, if this operand is dense.
    pub fn dense(&self) -> Option<&Tensor> {
        match self {
            Prepared::Dense(t) => Some(t),
            Prepared::Packed(_) => None,
        }
    }

    /// Materializes the dequantized dense tensor (tests and slow paths; the
    /// GEMM kernels never need it).
    pub fn to_tensor(&self) -> Tensor {
        match self {
            Prepared::Dense(t) => t.clone(),
            Prepared::Packed(p) => p.to_tensor(),
        }
    }

    /// Heap bytes this operand occupies — the packed form holds ~¼ of the
    /// dense f32 footprint for the paper's formats.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Prepared::Dense(t) => 4 * t.numel(),
            Prepared::Packed(p) => p.heap_bytes(),
        }
    }
}

/// A GEMM-ready operand for one execution: borrowed FP32, owned quantized,
/// or served from a frozen cache.
#[derive(Debug)]
pub enum GemmOperand<'a> {
    /// The unquantized tensor itself (FP32 format — identity quantization).
    Borrowed(&'a Tensor),
    /// A freshly prepared operand owned by this call site.
    Own(Prepared),
    /// A cached prepared operand (frozen weights).
    Cached(&'a Prepared),
}

impl GemmOperand<'_> {
    /// A kernel-facing view of this operand.
    pub fn operand(&self) -> Operand<'_> {
        match self {
            GemmOperand::Borrowed(t) => Operand::Dense(t),
            GemmOperand::Own(p) => p.operand(),
            GemmOperand::Cached(p) => p.operand(),
        }
    }
}

fn layout_of(axis: GroupAxis) -> PackLayout {
    match axis {
        GroupAxis::AlongRow => PackLayout::RowGroups,
        GroupAxis::AlongCol => PackLayout::ColGroups,
    }
}

/// One operand's claim on the counter noise stream (DESIGN.md §12): the
/// session's pure noise function, the base position reserved for this
/// operand, and how many worker threads to shard the quantization over.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CounterCtx {
    pub(crate) rng: CounterRng,
    pub(crate) base: u64,
    pub(crate) workers: usize,
}

/// Returns the counter-noise context for an operand prepared under `sr`:
/// `Some` only when the operand actually draws stochastic noise (an
/// SR-rounded BFP format) *and* the resolved mode is [`SrMode::Counter`],
/// reserving one noise position per element from the session cursor.
/// Deterministic and scalar formats draw nothing, so they stay on the
/// shared sequential path in both modes (the counter and sequential entry
/// families are pinned bit-identical for them).
fn counter_ctx(
    session: &mut Session,
    sr: SrMode,
    fmt: NumericFormat,
    numel: usize,
) -> Option<CounterCtx> {
    match (sr, fmt) {
        (
            SrMode::Counter,
            NumericFormat::Bfp {
                rounding: Rounding::Stochastic { .. },
                ..
            },
        ) => Some(CounterCtx {
            rng: session.counter_rng(),
            base: session.reserve_sr(numel as u64),
            workers: fast_tensor::parallelism().workers(),
        }),
        _ => None,
    }
}

/// Tries to pack a counter-mode operand; `None` on pack refusal (wide
/// mantissas, non-plain inputs). Refusal consumes no noise — the dense
/// fallback re-draws the same reserved positions, so both representations
/// quantize bit-identically.
fn counter_pack(
    stats: &mut QuantStats,
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
    ctx: CounterCtx,
) -> Option<Prepared> {
    let NumericFormat::Bfp {
        format,
        rounding,
        windowed,
    } = fmt
    else {
        return None;
    };
    pack_matrix_counter(
        data,
        rows,
        cols,
        axis,
        format,
        rounding,
        ctx.rng,
        ctx.base,
        windowed,
        ctx.workers,
    )
    .map(|p| {
        stats.merge(p.stats);
        Prepared::Packed(PackedMat::new(
            rows,
            cols,
            format.group_size(),
            layout_of(axis),
            p.mantissas,
            p.scales,
        ))
    })
}

/// In-place dense counter-mode quantization — the fallback half of
/// [`counter_pack`], drawing the same reserved noise positions.
fn counter_dense(
    stats: &mut QuantStats,
    data: &mut [f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
    ctx: CounterCtx,
) {
    let NumericFormat::Bfp {
        format,
        rounding,
        windowed,
    } = fmt
    else {
        unreachable!("only SR-BFP operands route through the counter path")
    };
    stats.merge(fake_quantize_matrix_counter(
        data,
        rows,
        cols,
        axis,
        format,
        rounding,
        ctx.rng,
        ctx.base,
        windowed,
        ctx.workers,
    ));
}

/// Counter-mode core behind the `prepare*` entry points and the
/// frozen-weight cache builds: quantizes a raw `rows × cols` slice into an
/// owned operand, drawing noise at positions `ctx.base + r·cols + c` —
/// independent of visitation order, representation, and worker count.
pub(crate) fn prepare_slice_counter(
    stats: &mut QuantStats,
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
    ctx: CounterCtx,
) -> Prepared {
    if let Some(p) = counter_pack(stats, data, rows, cols, fmt, axis, ctx) {
        return p;
    }
    let mut buf = data.to_vec();
    counter_dense(stats, &mut buf, rows, cols, fmt, axis, ctx);
    Prepared::Dense(Tensor::from_vec(vec![rows, cols], buf))
}

/// Quantizes a raw `rows × cols` slice into an owned operand with an
/// explicit bit source — the shared core behind the session-level `prepare*`
/// entry points and the frozen-weight cache builds (which draw from a
/// deterministic hardware LFSR rather than the session stream).
pub fn prepare_slice_with<B: BitSource + ?Sized>(
    bits: &mut B,
    stats: &mut QuantStats,
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> Prepared {
    if let NumericFormat::Bfp {
        format,
        rounding,
        windowed,
    } = fmt
    {
        if let Some(p) = pack_matrix_with(data, rows, cols, axis, format, rounding, bits, windowed)
        {
            stats.merge(p.stats);
            return Prepared::Packed(PackedMat::new(
                rows,
                cols,
                format.group_size(),
                layout_of(axis),
                p.mantissas,
                p.scales,
            ));
        }
    }
    // Dense fallback: wide mantissas, non-plain inputs, scalar formats —
    // and the identity copy for FP32 (callers that can borrow instead use
    // `prepare`). `pack_matrix_with` consumed no bits on refusal, so the
    // stochastic stream here matches the historical quantize-copy path.
    let mut buf = data.to_vec();
    stats.merge(fmt.quantize_slice_stats(&mut buf, rows, cols, axis, bits));
    Prepared::Dense(Tensor::from_vec(vec![rows, cols], buf))
}

/// Prepares a borrowed rank-2 tensor operand: FP32 formats borrow the
/// tensor outright (no copy), BFP formats pack, everything else quantizes a
/// copy.
///
/// # Panics
///
/// Panics if `t` is not rank-2.
pub fn prepare<'a>(
    session: &mut Session,
    t: &'a Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'a> {
    let sr = session.sr_mode;
    prepare_sr(session, sr, t, fmt, axis)
}

/// [`prepare`] under an explicit [`SrMode`], overriding
/// [`Session::sr_mode`] for this one operand — the entry point layers use
/// to honor their per-layer override
/// ([`QuantControlled::sr_mode_mut`](crate::QuantControlled::sr_mode_mut)).
pub fn prepare_sr<'a>(
    session: &mut Session,
    sr: SrMode,
    t: &'a Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'a> {
    let _span = fast_telemetry::span!("qgemm.prepare");
    if matches!(fmt, NumericFormat::Fp32) {
        let op = GemmOperand::Borrowed(t);
        crate::telemetry::note_operand(&op);
        return op;
    }
    assert_eq!(t.rank(), 2, "GEMM operands must be rank-2");
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    let op = if let Some(ctx) = counter_ctx(session, sr, fmt, rows * cols) {
        GemmOperand::Own(prepare_slice_counter(
            &mut session.plan_stats.quant,
            t.data(),
            rows,
            cols,
            fmt,
            axis,
            ctx,
        ))
    } else {
        let (bits, stats) = session.quant_parts();
        GemmOperand::Own(prepare_slice_with(
            bits,
            stats,
            t.data(),
            rows,
            cols,
            fmt,
            axis,
        ))
    };
    crate::telemetry::note_operand(&op);
    op
}

/// Prepares an owned rank-2 tensor operand, quantizing **in place** on the
/// dense fallback path (the right entry point for scratch matrices like
/// `im2col` buffers — no representation ever copies them).
///
/// # Panics
///
/// Panics if `t` is not rank-2.
pub fn prepare_owned(
    session: &mut Session,
    t: Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let sr = session.sr_mode;
    prepare_owned_sr(session, sr, t, fmt, axis)
}

/// [`prepare_owned`] under an explicit [`SrMode`] (see [`prepare_sr`]).
pub fn prepare_owned_sr(
    session: &mut Session,
    sr: SrMode,
    mut t: Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let _span = fast_telemetry::span!("qgemm.prepare");
    let op = prepare_owned_sr_inner(session, sr, &mut t, fmt, axis);
    let op = match op {
        Some(p) => GemmOperand::Own(p),
        None => GemmOperand::Own(Prepared::Dense(t)),
    };
    crate::telemetry::note_operand(&op);
    op
}

/// The body of [`prepare_owned_sr`]: `Some(packed)` when the operand packed,
/// `None` when `t` was quantized in place (or borrowed through as FP32) and
/// should be wrapped dense by the caller.
fn prepare_owned_sr_inner(
    session: &mut Session,
    sr: SrMode,
    t: &mut Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> Option<Prepared> {
    if matches!(fmt, NumericFormat::Fp32) {
        return None;
    }
    assert_eq!(t.rank(), 2, "GEMM operands must be rank-2");
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    if let Some(ctx) = counter_ctx(session, sr, fmt, rows * cols) {
        let stats = &mut session.plan_stats.quant;
        if let Some(p) = counter_pack(stats, t.data(), rows, cols, fmt, axis, ctx) {
            return Some(p);
        }
        counter_dense(stats, t.data_mut(), rows, cols, fmt, axis, ctx);
        return None;
    }
    let (bits, stats) = session.quant_parts();
    if let NumericFormat::Bfp {
        format,
        rounding,
        windowed,
    } = fmt
    {
        if let Some(p) =
            pack_matrix_with(t.data(), rows, cols, axis, format, rounding, bits, windowed)
        {
            stats.merge(p.stats);
            return Some(Prepared::Packed(PackedMat::new(
                rows,
                cols,
                format.group_size(),
                layout_of(axis),
                p.mantissas,
                p.scales,
            )));
        }
    }
    stats.merge(fmt.quantize_slice_stats(t.data_mut(), rows, cols, axis, bits));
    None
}

/// Like [`prepare_owned`], but always yields a *dense* operand (in-place
/// quantization, never packing) — same values bit for bit, different
/// representation. The right entry for per-request scratch operands of
/// narrow serving GEMMs (single-digit output rows), where the packed form's
/// panel staging would be amortized over too few rows to pay for itself;
/// the serving working set is unaffected because scratch operands live only
/// for the one call (DESIGN.md §9).
///
/// # Panics
///
/// Panics if `t` is not rank-2.
pub fn prepare_owned_dense(
    session: &mut Session,
    t: Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let sr = session.sr_mode;
    prepare_owned_dense_sr(session, sr, t, fmt, axis)
}

/// [`prepare_owned_dense`] under an explicit [`SrMode`] (see
/// [`prepare_sr`]).
pub fn prepare_owned_dense_sr(
    session: &mut Session,
    sr: SrMode,
    mut t: Tensor,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let _span = fast_telemetry::span!("qgemm.prepare");
    if !matches!(fmt, NumericFormat::Fp32) {
        assert_eq!(t.rank(), 2, "GEMM operands must be rank-2");
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        if let Some(ctx) = counter_ctx(session, sr, fmt, rows * cols) {
            let stats = &mut session.plan_stats.quant;
            counter_dense(stats, t.data_mut(), rows, cols, fmt, axis, ctx);
        } else {
            let (bits, stats) = session.quant_parts();
            stats.merge(fmt.quantize_slice_stats(t.data_mut(), rows, cols, axis, bits));
        }
    }
    let op = GemmOperand::Own(Prepared::Dense(t));
    crate::telemetry::note_operand(&op);
    op
}

/// Prepares an operand straight from a raw `rows × cols` slice (e.g. a
/// conv weight tensor viewed as its im2col matrix) using the session bit
/// source.
pub fn prepare_slice(
    session: &mut Session,
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let sr = session.sr_mode;
    prepare_slice_sr(session, sr, data, rows, cols, fmt, axis)
}

/// [`prepare_slice`] under an explicit [`SrMode`] (see [`prepare_sr`]).
pub fn prepare_slice_sr(
    session: &mut Session,
    sr: SrMode,
    data: &[f32],
    rows: usize,
    cols: usize,
    fmt: NumericFormat,
    axis: GroupAxis,
) -> GemmOperand<'static> {
    let _span = fast_telemetry::span!("qgemm.prepare");
    let op = if let Some(ctx) = counter_ctx(session, sr, fmt, rows * cols) {
        GemmOperand::Own(prepare_slice_counter(
            &mut session.plan_stats.quant,
            data,
            rows,
            cols,
            fmt,
            axis,
            ctx,
        ))
    } else {
        let (bits, stats) = session.quant_parts();
        GemmOperand::Own(prepare_slice_with(bits, stats, data, rows, cols, fmt, axis))
    };
    crate::telemetry::note_operand(&op);
    op
}

/// Executes one GEMM over prepared operands under [`Session::exec_mode`],
/// accumulating [`Session::plan_stats`]. Under the default
/// [`ExecMode::Replay`] this is bit-identical to running the corresponding
/// dense kernel on dequantized copies of both operands.
///
/// ```
/// use fast_bfp::{BfpFormat, GroupAxis};
/// use fast_nn::qgemm::{execute, prepare, Orient};
/// use fast_nn::{NumericFormat, Session};
/// use fast_tensor::Tensor;
///
/// let mut session = Session::eval(0);
/// let a = Tensor::from_vec(vec![2, 32], vec![0.25; 64]);
/// let w = Tensor::from_vec(vec![32, 3], vec![0.5; 96]);
/// let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
/// // Quantization groups along the reduction dim: A along its rows, W down
/// // its columns — the layouts both execution modes accept for `Nn`.
/// let ap = prepare(&mut session, &a, fmt, GroupAxis::AlongRow);
/// let wp = prepare(&mut session, &w, fmt, GroupAxis::AlongCol);
/// let o = execute(&mut session, Orient::Nn, &ap, &wp);
/// assert_eq!(o.shape(), &[2, 3]);
/// assert_eq!(session.plan_stats.gemms, 1);
/// ```
///
/// # Panics
///
/// Panics if the operand shapes disagree for the orientation.
pub fn execute(
    session: &mut Session,
    orient: Orient,
    a: &GemmOperand<'_>,
    b: &GemmOperand<'_>,
) -> Tensor {
    let mode = session.exec_mode;
    execute_with(session, mode, orient, a, b)
}

/// [`execute`] under an explicit [`ExecMode`], overriding
/// [`Session::exec_mode`] for this one GEMM — the entry point layers use to
/// honor their per-layer override
/// ([`QuantControlled::exec_mode_mut`](crate::QuantControlled::exec_mode_mut)).
///
/// [`ExecMode::Integer`] applies only to packed×packed operand pairs whose
/// quantization groups run along the reduction dimension; every other pair
/// silently executes on the replay path, so requesting integer execution
/// never changes *whether* a GEMM is faithful, only which deterministic f32
/// association an eligible pair is summed in (DESIGN.md §11).
///
/// # Panics
///
/// Panics if the operand shapes disagree for the orientation.
pub fn execute_with(
    session: &mut Session,
    mode: ExecMode,
    orient: Orient,
    a: &GemmOperand<'_>,
    b: &GemmOperand<'_>,
) -> Tensor {
    let (av, bv) = (a.operand(), b.operand());
    let (ar, ac) = av.dims();
    let (br, bc) = bv.dims();
    let (m, k, n) = match orient {
        Orient::Nn => (ar, ac, bc),
        Orient::Nt | Orient::Bt => (ar, ac, br),
        Orient::Tn => (ac, ar, bc),
    };
    session.plan_stats.gemms += 1;
    session.plan_stats.macs += (m * k * n) as u64;
    crate::telemetry::note_gemm(mode, (m * k * n) as u64);
    // One static span site per mode, so the per-mode dispatch split shows up
    // in fast_span_ns{span="qgemm.execute.<mode>"} without a dynamic label.
    let _span = match mode {
        ExecMode::Replay => fast_telemetry::span!("qgemm.execute.replay"),
        ExecMode::Integer => fast_telemetry::span!("qgemm.execute.integer"),
    };
    match orient {
        Orient::Nn => qmatmul_ex(mode, av, bv),
        Orient::Nt => qmatmul_nt_ex(mode, av, bv),
        Orient::Tn => qmatmul_tn_ex(mode, av, bv),
        Orient::Bt => qmatmul_bt_ex(mode, av, bv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_bfp::BfpFormat;
    use fast_tensor::matmul;

    fn tensor(rows: usize, cols: usize, seed: u32) -> Tensor {
        Tensor::from_vec(
            vec![rows, cols],
            (0..rows * cols)
                .map(|i| ((i as u32).wrapping_mul(2654435761 + seed) % 1000) as f32 * 0.002 - 1.0)
                .collect(),
        )
    }

    #[test]
    fn fp32_operands_are_borrowed_not_copied() {
        let mut s = Session::new(0);
        let t = tensor(4, 8, 1);
        let op = prepare(&mut s, &t, NumericFormat::Fp32, GroupAxis::AlongRow);
        assert!(matches!(op, GemmOperand::Borrowed(_)));
        assert_eq!(s.plan_stats.quant, QuantStats::default());
    }

    #[test]
    fn bfp_operands_pack_and_count_stats() {
        let mut s = Session::new(0);
        let t = tensor(4, 32, 2);
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let op = prepare(&mut s, &t, fmt, GroupAxis::AlongRow);
        assert!(matches!(op, GemmOperand::Own(Prepared::Packed(_))));
        assert_eq!(s.plan_stats.quant.groups, 8);
    }

    #[test]
    fn wide_mantissa_bfp_falls_back_to_dense() {
        let mut s = Session::new(0);
        let t = tensor(2, 16, 3);
        let fmt = NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap());
        let op = prepare(&mut s, &t, fmt, GroupAxis::AlongRow);
        assert!(matches!(op, GemmOperand::Own(Prepared::Dense(_))));
        assert_eq!(s.plan_stats.quant.groups, 2);
    }

    #[test]
    fn execute_matches_reference_composition_and_meters() {
        let mut s = Session::new(0);
        // This test pins the *replay* composition by definition; keep it
        // meaningful when CI forces FAST_QGEMM_MODE=integer or
        // FAST_SR_MODE=counter (the reference draws from `s.rng()`).
        s.exec_mode = ExecMode::Replay;
        s.sr_mode = SrMode::Lfsr;
        let a = tensor(5, 32, 4);
        let b = tensor(32, 9, 5);
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        let mut aq = a.clone();
        let mut bq = b.clone();
        fmt.quantize_matrix(&mut aq, GroupAxis::AlongRow, s.rng());
        fmt.quantize_matrix(&mut bq, GroupAxis::AlongCol, s.rng());
        let want = matmul(&aq, &bq);

        let ap = prepare(&mut s, &a, fmt, GroupAxis::AlongRow);
        let bp = prepare(&mut s, &b, fmt, GroupAxis::AlongCol);
        let got = execute(&mut s, Orient::Nn, &ap, &bp);
        assert_eq!(got, want);
        assert_eq!(s.plan_stats.gemms, 1);
        assert_eq!(s.plan_stats.macs, 5 * 32 * 9);
    }

    #[test]
    fn packed_working_set_is_smaller_than_dense() {
        let mut s = Session::new(0);
        let t = tensor(64, 64, 6);
        let fmt = NumericFormat::bfp_nearest(BfpFormat::high());
        if let GemmOperand::Own(p) = prepare(&mut s, &t, fmt, GroupAxis::AlongCol) {
            assert!(p.heap_bytes() * 3 < 4 * t.numel(), "{}", p.heap_bytes());
        } else {
            panic!("expected an owned packed operand");
        }
    }
}
