//! Optimizers operating on FP32 master weights.
//!
//! The paper keeps weight *updates* in full precision (the systolic array's
//! accumulator output sums with the FP-stored weights, Fig 12c; Adam's
//! moments "require additional hardware", Section V-A). Both SGD with
//! momentum (CNNs, YOLO) and Adam (transformer) are provided.

use crate::layer::Layer;
use fast_ckpt::{StateVisitor, VisitState};
use fast_tensor::Tensor;

/// SGD with momentum and decoupled weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocities: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for step decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update step over all parameters of `model` and zeroes
    /// the gradients.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let (lr, mom, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocities = &mut self.velocities;
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if velocities.len() == idx {
                velocities.push(p.value.zeros_like());
            }
            let v = &mut velocities[idx];
            assert_eq!(
                v.numel(),
                p.value.numel(),
                "parameter order changed between steps"
            );
            for ((vel, w), g) in v
                .data_mut()
                .iter_mut()
                .zip(p.value.data_mut())
                .zip(p.grad.data_mut())
            {
                let mut grad = *g;
                if p.decay {
                    grad += wd * *w;
                }
                *vel = mom * *vel + grad;
                *w -= lr * *vel;
                *g = 0.0;
            }
            idx += 1;
        });
    }
}

/// SGD's trajectory state: the momentum buffers (ordered as `visit_params`
/// orders parameters, shapes carried by the artifact because the buffers
/// are sized lazily on the first step) and the learning rate, which decay
/// schedules mutate via [`Sgd::set_lr`]. Hyper-parameters fixed at
/// construction (momentum, weight decay) are configuration, not state.
impl VisitState for Sgd {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        v.tensor_seq("velocities", &mut self.velocities);
        v.scalar_f32("lr", &mut self.lr);
    }
}

/// Adam optimizer (paper transformer settings: β1=0.9, β2=0.999).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the paper's transformer defaults.
    pub fn new(lr: f32) -> Self {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an Adam optimizer with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step and zeroes gradients.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if ms.len() == idx {
                ms.push(p.value.zeros_like());
                vs.push(p.value.zeros_like());
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for (((mi, vi), w), g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(p.value.data_mut())
                .zip(p.grad.data_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * *g;
                *vi = b2 * *vi + (1.0 - b2) * *g * *g;
                let mh = *mi / bc1;
                let vh = *vi / bc2;
                *w -= lr * mh / (vh.sqrt() + eps);
                *g = 0.0;
            }
            idx += 1;
        });
    }
}

/// Adam's trajectory state: both moment buffers and the step counter `t`
/// that drives bias correction — resuming without `t` would re-warm the
/// corrections and diverge from the uninterrupted run on the first step.
/// Any optimizer that exposes its slots this way is checkpointable by
/// construction; `Trainer` only requires [`VisitState`].
impl VisitState for Adam {
    fn visit_state(&mut self, v: &mut dyn StateVisitor) {
        v.scalar_u64("t", &mut self.t);
        v.tensor_seq("m", &mut self.m);
        v.tensor_seq("v", &mut self.v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Session;
    use crate::linear::Dense;
    use crate::loss::mse_loss;
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    fn fit_line(opt_is_adam: bool) -> f64 {
        // Learn y = 2x with a 1->1 linear layer.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut model = Dense::new(1, 1, true, &mut rng);
        let mut s = Session::new(0);
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut adam = Adam::new(0.05);
        let xs = Tensor::from_vec(vec![8, 1], (0..8).map(|i| i as f32 * 0.25 - 1.0).collect());
        let ys = xs.map(|v| 2.0 * v);
        let mut last = 0.0;
        for _ in 0..200 {
            let out = model.forward(&xs, &mut s);
            let (loss, grad) = mse_loss(&out, &ys);
            model.backward(&grad, &mut s);
            if opt_is_adam {
                adam.step(&mut model);
            } else {
                sgd.step(&mut model);
            }
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        assert!(fit_line(false) < 1e-4);
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        assert!(fit_line(true) < 1e-3);
    }

    #[test]
    fn gradients_are_zeroed_after_step() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut model = Dense::new(2, 2, true, &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::full(vec![1, 2], 1.0);
        let out = model.forward(&x, &mut s);
        model.backward(&out, &mut s);
        let mut sgd = Sgd::new(0.01, 0.0, 0.0);
        sgd.step(&mut model);
        model.visit_params(&mut |p| {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        });
    }

    #[test]
    fn optimizer_state_roundtrips_through_the_visitor() {
        use fast_ckpt::{capture_state, restore_state};
        // Run a few steps so momenta and the Adam step counter are
        // non-trivial, snapshot, keep stepping, then restore and replay —
        // the replay must be bit-identical.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = Dense::new(3, 2, true, &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![2, 3], (0..6).map(|i| 0.2 * i as f32 - 0.5).collect());
        let y = Tensor::from_vec(vec![2, 2], vec![1.0, -1.0, 0.5, 0.25]);
        let mut adam = Adam::new(0.01);
        let step = |model: &mut Dense, adam: &mut Adam, s: &mut Session| {
            let out = model.forward(&x, s);
            let (_, grad) = mse_loss(&out, &y);
            model.backward(&grad, s);
            adam.step(model);
        };
        for _ in 0..3 {
            step(&mut model, &mut adam, &mut s);
        }
        let adam_snap = capture_state(&mut adam);
        let model_snap =
            capture_state(&mut |v: &mut dyn fast_ckpt::StateVisitor| model.visit_state(v));
        assert!(adam_snap.get("t").is_some(), "step counter must be exposed");
        assert!(adam_snap.get("m").is_some(), "moments must be exposed");
        step(&mut model, &mut adam, &mut s);
        let after_params = model.weights().clone();
        // Restore both and replay the fourth step.
        restore_state(&mut adam, &adam_snap).unwrap();
        restore_state(
            &mut |v: &mut dyn fast_ckpt::StateVisitor| model.visit_state(v),
            &model_snap,
        )
        .unwrap();
        step(&mut model, &mut adam, &mut s);
        assert_eq!(model.weights(), &after_params, "replayed step must match");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = Dense::new(2, 2, false, &mut rng);
        let before = model.weights().sq_norm();
        // No data gradient: decay alone should shrink the norm.
        let mut sgd = Sgd::new(0.1, 0.0, 0.1);
        for _ in 0..10 {
            sgd.step(&mut model);
        }
        assert!(model.weights().sq_norm() < before);
    }
}
