//! Quantization-aware DNN training substrate for the FAST reproduction.
//!
//! This crate provides everything the paper's evaluation trains:
//!
//! * The number-format zoo of paper Fig 2 ([`NumericFormat`]) and the
//!   per-layer `(W, A, G)` assignment ([`LayerPrecision`]) that Algorithm 1
//!   manipulates.
//! * The [`Layer`] trait with forward/backward, parameter visitation for
//!   optimizers, and [`QuantControlled`] access for the FAST controller.
//! * GEMM layers ([`Dense`], [`Conv2d`], [`DepthwiseConv2d`],
//!   [`MultiHeadSelfAttention`]) that quantize every training GEMM of paper
//!   Fig 3 along its reduction axis — all routed through the shared
//!   quantized-GEMM execution plan ([`qgemm`]): operands are packed into
//!   BFP-native form (integer mantissas + group scales) and multiplied
//!   without materializing the dequantized f32 copies, bit-identically to
//!   the quantize-copy pipeline (DESIGN.md §9).
//! * [`models`] — scaled-down analogues of the paper's six evaluation DNNs.
//! * Losses, optimizers (SGD/momentum, Adam), metrics and a [`Trainer`]
//!   with controller hooks.
//! * An inference-serving mode ([`Session::inference`]): weight-bearing
//!   layers quantize their weights once and replay the cached copy per
//!   request, invalidated by any weight update — the layer half of the
//!   `fast_serve` engine (DESIGN.md §8; fake-quant fidelity in §3).
//! * Checkpointing ([`Layer::visit_state`], [`Trainer::save_checkpoint`] /
//!   [`Trainer::resume`]): every piece of trajectory-determining state —
//!   parameters, buffers, per-layer formats, optimizer slots, RNG words —
//!   round-trips through `fast_ckpt` artifacts for bit-exact resume and
//!   serving hot reload (DESIGN.md §10).
//!
//! ```
//! use fast_nn::models::mlp;
//! use fast_nn::{LayerPrecision, Layer, Session, set_uniform_precision};
//! use fast_tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut model = mlp(&[4, 16, 2], &mut rng);
//! // Train the whole network under the paper's HighBFP format:
//! set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
//! let mut session = Session::new(0);
//! let logits = model.forward(&Tensor::zeros(vec![1, 4]), &mut session);
//! assert_eq!(logits.shape(), &[1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod act;
mod attention;
mod conv;
mod embed;
mod frozen;
mod layer;
mod linear;
mod loss;
mod metrics;
mod model;
mod norm;
mod optim;
mod pool;
mod quant;
mod telemetry;
mod trainer;

pub mod models;
pub mod qgemm;

pub use act::{LeakyRelu, Relu};
pub use attention::MultiHeadSelfAttention;
pub use conv::{Conv2d, DepthwiseConv2d};
pub use embed::{Embedding, PositionalEmbedding};
pub use layer::{
    collect_precisions, parameter_count, quant_layer_count, set_exec_mode, set_sr_mode,
    set_uniform_precision, GemmShape, Layer, Param, QuantControlled, Session,
};
pub use linear::Dense;
pub use loss::{bce_with_logit, mse_loss, softmax_cross_entropy};
pub use metrics::{accuracy_percent, Running};
pub use model::{Residual, Sequential};
pub use norm::{BatchNorm2d, LayerNorm};
pub use optim::{Adam, Sgd};
pub use pool::{Flatten, GlobalAvgPool, MaxPool2d};
pub use qgemm::PlanStats;
pub use quant::{LayerPrecision, NumericFormat};
pub use trainer::{NoopHook, StepStats, TrainHook, Trainer};

// Execution-mode vocabulary, re-exported so trainer/controller/serving code
// can select the integer-domain qGEMM path without naming `fast_tensor`.
pub use fast_tensor::ExecMode;

// Stochastic-rounding-mode vocabulary (DESIGN.md §12), re-exported so the
// same audiences can select the counter-based noise source without naming
// `fast_bfp`.
pub use fast_bfp::SrMode;

// Checkpoint vocabulary, re-exported so layer/optimizer/controller authors
// (and `fast_core`/`fast_serve`) share one `StateVisitor` without naming
// `fast_ckpt` directly.
pub use fast_ckpt::{StateVisitor, VisitState};
