//! Static telemetry handles for the qgemm and trainer hot paths
//! (DESIGN.md §15).
//!
//! Handles live in `OnceLock` statics so the record path is one relaxed
//! atomic add — the global [`Registry`](fast_telemetry::Registry) mutex is
//! taken once per process per series, never per GEMM. Unlike span timers,
//! these counters are always on: they read values the computation already
//! produced (shapes, MAC counts, loss), so there is no clock or allocation
//! to gate.

use std::sync::OnceLock;

use fast_telemetry::{Counter, Gauge, Registry};
use fast_tensor::qgemm::ExecMode;

use crate::qgemm::{GemmOperand, Prepared};

struct GemmCounters {
    gemms: Counter,
    macs: Counter,
}

fn gemm_counters(mode: ExecMode) -> &'static GemmCounters {
    static REPLAY: OnceLock<GemmCounters> = OnceLock::new();
    static INTEGER: OnceLock<GemmCounters> = OnceLock::new();
    let (cell, label) = match mode {
        ExecMode::Replay => (&REPLAY, "replay"),
        ExecMode::Integer => (&INTEGER, "integer"),
    };
    cell.get_or_init(|| GemmCounters {
        gemms: Registry::global().counter(
            "fast_qgemm_gemms_total",
            "GEMMs executed through the qgemm plan, by execution mode",
            &[("mode", label)],
        ),
        macs: Registry::global().counter(
            "fast_qgemm_macs_total",
            "multiply-accumulates executed through the qgemm plan (m*k*n per GEMM), by execution mode",
            &[("mode", label)],
        ),
    })
}

/// Bumps the per-exec-mode GEMM and MAC counters for one plan execution.
pub(crate) fn note_gemm(mode: ExecMode, macs: u64) {
    let c = gemm_counters(mode);
    c.gemms.inc();
    c.macs.add(macs);
}

fn operand_elements(repr: usize) -> &'static Counter {
    static REPRS: [(OnceLock<Counter>, &str); 3] = [
        (OnceLock::new(), "borrowed"),
        (OnceLock::new(), "dense"),
        (OnceLock::new(), "packed"),
    ];
    let (cell, label) = &REPRS[repr];
    cell.get_or_init(|| {
        Registry::global().counter(
            "fast_quant_operand_elements_total",
            "matrix elements prepared as GEMM operands, by representation",
            &[("repr", label)],
        )
    })
}

/// Records one prepared operand's shape under its representation
/// (`borrowed` FP32, `dense` quantized copy, `packed` BFP mantissas).
pub(crate) fn note_operand(op: &GemmOperand<'_>) {
    let repr = match op {
        GemmOperand::Borrowed(_) => 0,
        GemmOperand::Own(p) => match p {
            Prepared::Dense(_) => 1,
            Prepared::Packed(_) => 2,
        },
        GemmOperand::Cached(p) => match p {
            Prepared::Dense(_) => 1,
            Prepared::Packed(_) => 2,
        },
    };
    let (rows, cols) = op.operand().dims();
    operand_elements(repr).add((rows * cols) as u64);
}

struct TrainMetrics {
    steps: Counter,
    loss: Gauge,
    iteration: Gauge,
    sr_draws: Gauge,
}

fn train_metrics() -> &'static TrainMetrics {
    static CELL: OnceLock<TrainMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let r = Registry::global();
        TrainMetrics {
            steps: r.counter("fast_train_steps_total", "optimizer steps completed", &[]),
            loss: r.gauge("fast_train_loss", "loss of the most recent training step", &[]),
            iteration: r.gauge(
                "fast_train_iteration",
                "iteration counter of the trainer after the most recent step",
                &[],
            ),
            sr_draws: r.gauge(
                "fast_train_sr_draws",
                "cumulative stochastic-rounding noise draws consumed by the session (counter mode reserves one per element)",
                &[],
            ),
        }
    })
}

/// Publishes per-step training telemetry after one optimizer step.
pub(crate) fn note_train_step(loss: f64, iter: u64, sr_draws: u64) {
    let m = train_metrics();
    m.steps.inc();
    m.loss.set(loss);
    m.iteration.set(iter as f64);
    m.sr_draws.set(sr_draws as f64);
}
