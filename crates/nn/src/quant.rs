//! Numeric formats for quantization-aware training (paper Fig 2) and the
//! per-layer precision assignment that the FAST controller manipulates.

use fast_bfp::{
    quantize_minifloat, BfpFormat, BitSource, GroupAxis, Minifloat, QuantStats, Rounding,
};
use fast_tensor::Tensor;

/// A number format a tensor can be quantized to before entering a GEMM.
///
/// Mirrors the format zoo of paper Fig 2: fixed point (top), floating point
/// (middle), and block floating point (bottom).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum NumericFormat {
    /// IEEE-754 32-bit floating point — the no-quantization baseline.
    #[default]
    Fp32,
    /// A custom scalar floating-point format (bfloat16, FP16, TF32, HFP8…).
    Mini(Minifloat),
    /// Fixed point with per-tensor symmetric uniform quantization.
    Int {
        /// Total bits including sign (e.g. 8 for INT8, 12 for INT12).
        bits: u32,
    },
    /// Block floating point.
    Bfp {
        /// Group size / mantissa / exponent widths.
        format: BfpFormat,
        /// Rounding rule (stochastic for gradients per the paper).
        rounding: Rounding,
        /// Model the finite `e`-bit exponent field via a per-tensor window.
        windowed: bool,
    },
}

impl NumericFormat {
    /// bfloat16 (1-8-7).
    pub fn bf16() -> Self {
        NumericFormat::Mini(Minifloat::BF16)
    }

    /// IEEE FP16 (1-5-10), the compute format of Nvidia Mixed Precision.
    pub fn fp16() -> Self {
        NumericFormat::Mini(Minifloat::FP16)
    }

    /// Nvidia TensorFloat-32 (1-8-10).
    pub fn tf32() -> Self {
        NumericFormat::Mini(Minifloat::TF32)
    }

    /// HFP8 forward format (1-4-3).
    pub fn hfp8_fwd() -> Self {
        NumericFormat::Mini(Minifloat::HFP8_FWD)
    }

    /// HFP8 backward format (1-5-2).
    pub fn hfp8_bwd() -> Self {
        NumericFormat::Mini(Minifloat::HFP8_BWD)
    }

    /// INT8 fixed point.
    pub fn int8() -> Self {
        NumericFormat::Int { bits: 8 }
    }

    /// INT12 fixed point.
    pub fn int12() -> Self {
        NumericFormat::Int { bits: 12 }
    }

    /// BFP with nearest rounding (weights/activations path).
    ///
    /// The shared exponent is modeled as unbounded (a software-managed
    /// per-tensor bias keeps the `e`-bit field from binding); the
    /// strictly-clipped window variant is available by constructing
    /// [`NumericFormat::Bfp`] with `windowed: true` and is evaluated in the
    /// `ablation_window` experiment.
    pub fn bfp_nearest(format: BfpFormat) -> Self {
        NumericFormat::Bfp {
            format,
            rounding: Rounding::Nearest,
            windowed: false,
        }
    }

    /// BFP with 8-bit stochastic rounding (gradient path, paper Fig 4c).
    pub fn bfp_stochastic(format: BfpFormat) -> Self {
        NumericFormat::Bfp {
            format,
            rounding: Rounding::STOCHASTIC8,
            windowed: false,
        }
    }

    /// Human-readable name for tables.
    pub fn name(&self) -> String {
        match self {
            NumericFormat::Fp32 => "FP32".to_string(),
            NumericFormat::Mini(m) if *m == Minifloat::BF16 => "bfloat16".to_string(),
            NumericFormat::Mini(m) if *m == Minifloat::FP16 => "FP16".to_string(),
            NumericFormat::Mini(m) if *m == Minifloat::TF32 => "TF32".to_string(),
            NumericFormat::Mini(m) if *m == Minifloat::HFP8_FWD => "HFP8-143".to_string(),
            NumericFormat::Mini(m) if *m == Minifloat::HFP8_BWD => "HFP8-152".to_string(),
            NumericFormat::Mini(m) => format!("FP(e={},m={})", m.exp_bits, m.man_bits),
            NumericFormat::Int { bits } => format!("INT{bits}"),
            NumericFormat::Bfp {
                format, rounding, ..
            } => {
                let sr = matches!(rounding, Rounding::Stochastic { .. });
                format!("{format}{}", if sr { "+SR" } else { "" })
            }
        }
    }

    /// Mantissa bits carried per value, for hardware cost modeling.
    /// (FP32 = 23, FP16 = 10, INTb = b-1, BFP = m.)
    pub fn mantissa_bits(&self) -> u32 {
        match self {
            NumericFormat::Fp32 => 23,
            NumericFormat::Mini(m) => m.man_bits,
            NumericFormat::Int { bits } => bits - 1,
            NumericFormat::Bfp { format, .. } => format.mantissa_bits(),
        }
    }

    /// Quantizes a rank-2 tensor in place, grouping along `axis` for BFP
    /// formats (scalar formats ignore the axis).
    ///
    /// Generic over the [`BitSource`] so BFP quantization dispatches into
    /// the monomorphized batch kernels of `fast_bfp::kernel`; `&mut dyn
    /// BitSource` still works (and erases the source as before).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not rank 2.
    pub fn quantize_matrix<B: BitSource + ?Sized>(
        &self,
        t: &mut Tensor,
        axis: GroupAxis,
        bits: &mut B,
    ) {
        assert_eq!(t.rank(), 2, "quantize_matrix requires a rank-2 tensor");
        let (rows, cols) = (t.shape()[0], t.shape()[1]);
        self.quantize_slice(t.data_mut(), rows, cols, axis, bits);
    }

    /// Slice-level form of [`NumericFormat::quantize_matrix`]: quantizes a
    /// row-major `rows × cols` buffer in place. This is the entry point the
    /// frozen-weight caches and the quantized-GEMM plan's dense fallback
    /// use, since they hold raw buffers rather than tensors.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn quantize_slice<B: BitSource + ?Sized>(
        &self,
        data: &mut [f32],
        rows: usize,
        cols: usize,
        axis: GroupAxis,
        bits: &mut B,
    ) {
        let _ = self.quantize_slice_stats(data, rows, cols, axis, bits);
    }

    /// [`NumericFormat::quantize_slice`] returning the [`QuantStats`] of the
    /// pass (scalar formats, which form no groups, report empty stats).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn quantize_slice_stats<B: BitSource + ?Sized>(
        &self,
        data: &mut [f32],
        rows: usize,
        cols: usize,
        axis: GroupAxis,
        bits: &mut B,
    ) -> QuantStats {
        assert_eq!(data.len(), rows * cols, "quantize_slice shape mismatch");
        match self {
            NumericFormat::Fp32 => QuantStats::default(),
            NumericFormat::Mini(m) => {
                let m = *m;
                for v in data.iter_mut() {
                    *v = quantize_minifloat(*v, m);
                }
                QuantStats::default()
            }
            NumericFormat::Int { bits: b } => {
                quantize_int_symmetric(data, *b);
                QuantStats::default()
            }
            NumericFormat::Bfp {
                format,
                rounding,
                windowed,
            } => fast_bfp::kernel::fake_quantize_matrix_with(
                data, rows, cols, axis, *format, *rounding, bits, *windowed,
            ),
        }
    }

    /// Returns a quantized copy of `src` (the clone-then-quantize pattern of
    /// the layer GEMM paths, fused into one entry point).
    pub fn quantize_copy<B: BitSource + ?Sized>(
        &self,
        src: &Tensor,
        axis: GroupAxis,
        bits: &mut B,
    ) -> Tensor {
        let mut out = src.clone();
        self.quantize_matrix(&mut out, axis, bits);
        out
    }

    /// Encodes the format into the stable little-endian wire form used by
    /// checkpoint artifacts (DESIGN.md §10): a one-byte tag followed by the
    /// variant's fields. [`NumericFormat::from_wire`] reverses it exactly.
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            NumericFormat::Fp32 => vec![0],
            NumericFormat::Mini(m) => vec![1, m.exp_bits as u8, m.man_bits as u8],
            NumericFormat::Int { bits } => vec![2, *bits as u8],
            NumericFormat::Bfp {
                format,
                rounding,
                windowed,
            } => {
                let mut out = vec![3];
                out.extend_from_slice(&(format.group_size() as u32).to_le_bytes());
                out.push(format.mantissa_bits() as u8);
                out.push(format.exponent_bits() as u8);
                match rounding {
                    Rounding::Nearest => out.push(0),
                    Rounding::Truncate => out.push(1),
                    Rounding::Stochastic { noise_bits } => {
                        out.push(2);
                        out.push(*noise_bits as u8);
                    }
                }
                out.push(u8::from(*windowed));
                out
            }
        }
    }

    /// Decodes a format from its [`NumericFormat::to_wire`] bytes,
    /// validating every field (BFP parameters go back through
    /// [`fast_bfp::BfpFormat::new`]).
    ///
    /// # Errors
    ///
    /// A description of the first malformed field — the caller (the
    /// checkpoint restore path) wraps it into its own typed error.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        let take = |i: usize| -> Result<u8, String> {
            bytes
                .get(i)
                .copied()
                .ok_or_else(|| "numeric format encoding truncated".to_string())
        };
        let fmt = match take(0)? {
            0 => (NumericFormat::Fp32, 1),
            1 => {
                let exp_bits = take(1)? as u32;
                let man_bits = take(2)? as u32;
                // Bounds of an FP32-sourced minifloat: at least one exponent
                // bit (the bias computes `2^(e-1) - 1`), no wider than the
                // source's 8-bit exponent / 23-bit fraction.
                if !(1..=8).contains(&exp_bits) {
                    return Err(format!("minifloat exponent bits {exp_bits} out of range"));
                }
                if man_bits > 23 {
                    return Err(format!("minifloat mantissa bits {man_bits} out of range"));
                }
                (NumericFormat::Mini(Minifloat { exp_bits, man_bits }), 3)
            }
            2 => {
                let bits = take(1)? as u32;
                if !(2..=16).contains(&bits) {
                    return Err(format!("INT bit width {bits} out of range"));
                }
                (NumericFormat::Int { bits }, 2)
            }
            3 => {
                if bytes.len() < 5 {
                    return Err("numeric format encoding truncated".to_string());
                }
                let g = u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]) as usize;
                let m = take(5)? as u32;
                let e = take(6)? as u32;
                let format = BfpFormat::new(g, m, e).map_err(|err| err.to_string())?;
                let (rounding, next) = match take(7)? {
                    0 => (Rounding::Nearest, 8),
                    1 => (Rounding::Truncate, 8),
                    2 => {
                        let noise_bits = take(8)? as u32;
                        if !(1..=31).contains(&noise_bits) {
                            return Err(format!("SR noise bits {noise_bits} out of range"));
                        }
                        (Rounding::Stochastic { noise_bits }, 9)
                    }
                    other => return Err(format!("unknown rounding tag {other}")),
                };
                let windowed = match take(next)? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad windowed flag {other}")),
                };
                (
                    NumericFormat::Bfp {
                        format,
                        rounding,
                        windowed,
                    },
                    next + 1,
                )
            }
            other => return Err(format!("unknown numeric format tag {other}")),
        };
        let (value, used) = fmt;
        if bytes.len() != used {
            return Err("trailing bytes after numeric format".to_string());
        }
        Ok(value)
    }
}

/// Visits a layer's precision assignment as a `"precision"` bytes entry:
/// capture records the wire encoding, restore re-parses it (reporting a
/// malformed encoding through the visitor instead of panicking).
pub(crate) fn visit_precision(v: &mut dyn fast_ckpt::StateVisitor, precision: &mut LayerPrecision) {
    let mut enc = precision.to_wire();
    v.bytes("precision", &mut enc);
    match LayerPrecision::from_wire(&enc) {
        Ok(p) => *precision = p,
        Err(why) => v.invalid("precision", why),
    }
}

/// Visits a single [`NumericFormat`] as a named bytes entry (the attention
/// layer's inner-GEMM format).
pub(crate) fn visit_format(
    v: &mut dyn fast_ckpt::StateVisitor,
    name: &str,
    format: &mut NumericFormat,
) {
    let mut enc = format.to_wire();
    v.bytes(name, &mut enc);
    match NumericFormat::from_wire(&enc) {
        Ok(f) => *format = f,
        Err(why) => v.invalid(name, why),
    }
}

impl std::fmt::Display for NumericFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Per-tensor symmetric uniform quantization to `bits` total bits.
fn quantize_int_symmetric(data: &mut [f32], bits: u32) {
    assert!((2..=16).contains(&bits), "INT bits must be in 2..=16");
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return;
    }
    let qmax = ((1i64 << (bits - 1)) - 1) as f32;
    let scale = max_abs / qmax;
    for v in data.iter_mut() {
        let q = (*v / scale).round().clamp(-qmax, qmax);
        *v = q * scale;
    }
}

/// The (W, A, G) format assignment for one GEMM-bearing layer — the unit of
/// control of the FAST-Adaptive algorithm (paper Algorithm 1 operates on
/// `X ∈ [A_l, W_l, G_l]` independently per layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPrecision {
    /// Format for the weights `W` (both forward and backward use).
    pub weights: NumericFormat,
    /// Format for the activations `A` (forward GEMM and the `∇W` GEMM).
    pub activations: NumericFormat,
    /// Format for the output gradients `∇O` (both backward GEMMs).
    pub gradients: NumericFormat,
}

impl LayerPrecision {
    /// Uniform format for all three tensors.
    pub fn uniform(fmt: NumericFormat) -> Self {
        LayerPrecision {
            weights: fmt,
            activations: fmt,
            gradients: fmt,
        }
    }

    /// Full-precision baseline.
    pub fn fp32() -> Self {
        LayerPrecision::uniform(NumericFormat::Fp32)
    }

    /// bfloat16 everywhere (Google-style training).
    pub fn bf16() -> Self {
        LayerPrecision::uniform(NumericFormat::bf16())
    }

    /// Nvidia Mixed Precision: FP16 compute with FP32 master weights (master
    /// weights are always FP32 in this substrate).
    pub fn nvidia_mp() -> Self {
        LayerPrecision::uniform(NumericFormat::fp16())
    }

    /// HFP8: 1-4-3 forward operands, 1-5-2 gradients (paper Section II-A).
    pub fn hfp8() -> Self {
        LayerPrecision {
            weights: NumericFormat::hfp8_fwd(),
            activations: NumericFormat::hfp8_fwd(),
            gradients: NumericFormat::hfp8_bwd(),
        }
    }

    /// INT8 fixed point everywhere.
    pub fn int8() -> Self {
        LayerPrecision::uniform(NumericFormat::int8())
    }

    /// INT12 fixed point everywhere.
    pub fn int12() -> Self {
        LayerPrecision::uniform(NumericFormat::int12())
    }

    /// MSFP-12 (BFP `g=16, m=3, e=8`) with nearest rounding, as in
    /// Microsoft's inference-oriented format.
    pub fn msfp12() -> Self {
        LayerPrecision::uniform(NumericFormat::bfp_nearest(BfpFormat::msfp12()))
    }

    /// The paper's fixed-BFP settings: nearest rounding for W/A, stochastic
    /// rounding for gradients (Section III-C: SR is critical for gradients).
    ///
    /// `m = 2` is LowBFP, `3` MidBFP, `4` HighBFP.
    pub fn bfp_fixed(m: u32) -> Self {
        let fmt = BfpFormat::high()
            .with_mantissa_bits(m)
            .expect("valid mantissa width");
        LayerPrecision {
            weights: NumericFormat::bfp_nearest(fmt),
            activations: NumericFormat::bfp_nearest(fmt),
            gradients: NumericFormat::bfp_stochastic(fmt),
        }
    }

    /// A FAST variable-precision assignment: independent mantissa widths for
    /// W, A, G (each 2 or 4 in the paper), `g=16, e=3`, SR on gradients.
    pub fn fast(m_w: u32, m_a: u32, m_g: u32) -> Self {
        let f = |m| {
            BfpFormat::high()
                .with_mantissa_bits(m)
                .expect("valid mantissa width")
        };
        LayerPrecision {
            weights: NumericFormat::bfp_nearest(f(m_w)),
            activations: NumericFormat::bfp_nearest(f(m_a)),
            gradients: NumericFormat::bfp_stochastic(f(m_g)),
        }
    }

    /// Mantissa widths `(m_W, m_A, m_G)` as seen by the hardware cost model.
    pub fn mantissa_widths(&self) -> (u32, u32, u32) {
        (
            self.weights.mantissa_bits(),
            self.activations.mantissa_bits(),
            self.gradients.mantissa_bits(),
        )
    }

    /// Encodes the (W, A, G) assignment into the checkpoint wire form:
    /// three length-prefixed [`NumericFormat::to_wire`] encodings.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for fmt in [&self.weights, &self.activations, &self.gradients] {
            let enc = fmt.to_wire();
            out.push(enc.len() as u8);
            out.extend_from_slice(&enc);
        }
        out
    }

    /// Decodes a [`LayerPrecision::to_wire`] encoding.
    ///
    /// # Errors
    ///
    /// A description of the first malformed field.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let mut next = || -> Result<NumericFormat, String> {
            let len = *bytes
                .get(pos)
                .ok_or_else(|| "layer precision encoding truncated".to_string())?
                as usize;
            let body = bytes
                .get(pos + 1..pos + 1 + len)
                .ok_or_else(|| "layer precision encoding truncated".to_string())?;
            pos += 1 + len;
            NumericFormat::from_wire(body)
        };
        let precision = LayerPrecision {
            weights: next()?,
            activations: next()?,
            gradients: next()?,
        };
        if pos != bytes.len() {
            return Err("trailing bytes after layer precision".to_string());
        }
        Ok(precision)
    }
}

impl Default for LayerPrecision {
    fn default() -> Self {
        LayerPrecision::fp32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct NoBits;
    impl BitSource for NoBits {
        fn next_bits(&mut self, _n: u32) -> u32 {
            unreachable!()
        }
    }

    #[test]
    fn fp32_is_identity() {
        let mut t = Tensor::from_vec(vec![2, 2], vec![0.1, -0.2, 0.3, 0.7]);
        let orig = t.clone();
        NumericFormat::Fp32.quantize_matrix(&mut t, GroupAxis::AlongRow, &mut NoBits);
        assert_eq!(t, orig);
    }

    #[test]
    fn int8_respects_levels() {
        let mut t = Tensor::from_vec(vec![1, 4], vec![1.0, -1.0, 0.337, 0.0]);
        NumericFormat::int8().quantize_matrix(&mut t, GroupAxis::AlongRow, &mut NoBits);
        // max_abs=1.0, scale=1/127; all outputs are multiples of the scale.
        for &v in t.data() {
            let q = v * 127.0;
            assert!((q - q.round()).abs() < 1e-4, "{v} not on the INT8 grid");
        }
        assert_eq!(t.data()[0], 1.0);
    }

    #[test]
    fn int_quantization_error_shrinks_with_bits() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let data: Vec<f32> = (0..256).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut prev = f64::INFINITY;
        for bits in [4u32, 8, 12] {
            let mut t = Tensor::from_vec(vec![16, 16], data.clone());
            NumericFormat::Int { bits }.quantize_matrix(&mut t, GroupAxis::AlongRow, &mut NoBits);
            let mse: f64 = t
                .data()
                .iter()
                .zip(&data)
                .map(|(q, x)| ((q - x) as f64).powi(2))
                .sum::<f64>()
                / data.len() as f64;
            assert!(mse < prev);
            prev = mse;
        }
    }

    #[test]
    fn bf16_quantization_truncates_mantissa() {
        let mut t = Tensor::from_vec(vec![1, 2], vec![1.0000001, std::f32::consts::PI]);
        NumericFormat::bf16().quantize_matrix(&mut t, GroupAxis::AlongRow, &mut NoBits);
        assert_eq!(t.data()[0], 1.0);
        assert!((t.data()[1] - std::f32::consts::PI).abs() < 0.02);
    }

    #[test]
    fn bfp_formats_group_along_requested_axis() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // Spread magnitudes over many octaves so row/column groups see
        // different shared exponents.
        let data: Vec<f32> = (0..64)
            .map(|_| 2.0f32.powf(rng.gen_range(-8.0f32..0.0)))
            .collect();
        let fmt = NumericFormat::bfp_nearest(BfpFormat::new(8, 4, 8).unwrap());
        let mut by_row = Tensor::from_vec(vec![8, 8], data.clone());
        let mut by_col = Tensor::from_vec(vec![8, 8], data.clone());
        fmt.quantize_matrix(&mut by_row, GroupAxis::AlongRow, &mut NoBits);
        fmt.quantize_matrix(&mut by_col, GroupAxis::AlongCol, &mut NoBits);
        assert_ne!(by_row, by_col, "axis must affect grouping");
    }

    #[test]
    fn preset_names_are_distinct() {
        let names: Vec<String> = [
            LayerPrecision::fp32().weights,
            LayerPrecision::bf16().weights,
            LayerPrecision::nvidia_mp().weights,
            LayerPrecision::hfp8().weights,
            LayerPrecision::int8().weights,
            LayerPrecision::int12().weights,
            LayerPrecision::msfp12().weights,
            LayerPrecision::bfp_fixed(3).weights,
        ]
        .iter()
        .map(|f| f.name())
        .collect();
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }

    #[test]
    fn fast_preset_uses_sr_only_on_gradients() {
        let p = LayerPrecision::fast(4, 2, 4);
        assert!(matches!(
            p.gradients,
            NumericFormat::Bfp {
                rounding: Rounding::Stochastic { .. },
                ..
            }
        ));
        assert!(matches!(
            p.weights,
            NumericFormat::Bfp {
                rounding: Rounding::Nearest,
                ..
            }
        ));
        assert_eq!(p.mantissa_widths(), (4, 2, 4));
    }

    #[test]
    fn wire_codec_roundtrips_the_format_zoo() {
        let formats = [
            NumericFormat::Fp32,
            NumericFormat::bf16(),
            NumericFormat::fp16(),
            NumericFormat::tf32(),
            NumericFormat::hfp8_fwd(),
            NumericFormat::hfp8_bwd(),
            NumericFormat::int8(),
            NumericFormat::int12(),
            NumericFormat::bfp_nearest(BfpFormat::low()),
            NumericFormat::bfp_stochastic(BfpFormat::high()),
            NumericFormat::Bfp {
                format: BfpFormat::new(8, 7, 8).unwrap(),
                rounding: Rounding::Truncate,
                windowed: true,
            },
            NumericFormat::Bfp {
                format: BfpFormat::new(16, 3, 3).unwrap(),
                rounding: Rounding::Stochastic { noise_bits: 5 },
                windowed: false,
            },
        ];
        for fmt in formats {
            assert_eq!(NumericFormat::from_wire(&fmt.to_wire()), Ok(fmt));
        }
        let precisions = [
            LayerPrecision::fp32(),
            LayerPrecision::hfp8(),
            LayerPrecision::bfp_fixed(4),
            LayerPrecision::fast(2, 4, 2),
            LayerPrecision::msfp12(),
        ];
        for p in precisions {
            assert_eq!(LayerPrecision::from_wire(&p.to_wire()), Ok(p));
        }
    }

    #[test]
    fn wire_codec_rejects_malformed_input() {
        assert!(NumericFormat::from_wire(&[]).is_err());
        assert!(NumericFormat::from_wire(&[99]).is_err());
        assert!(NumericFormat::from_wire(&[2, 200]).is_err(), "INT width");
        assert!(NumericFormat::from_wire(&[3, 0, 0]).is_err(), "truncated");
        assert!(
            NumericFormat::from_wire(&[1, 0, 7]).is_err(),
            "minifloat with zero exponent bits"
        );
        assert!(
            NumericFormat::from_wire(&[1, 9, 7]).is_err(),
            "minifloat exponent wider than FP32's"
        );
        assert!(
            NumericFormat::from_wire(&[1, 5, 24]).is_err(),
            "minifloat mantissa wider than FP32's"
        );
        // Valid prefix with trailing garbage.
        let mut enc = NumericFormat::Fp32.to_wire();
        enc.push(0);
        assert!(NumericFormat::from_wire(&enc).is_err());
        // BFP with out-of-range mantissa width.
        let mut bfp = NumericFormat::bfp_nearest(BfpFormat::high()).to_wire();
        bfp[5] = 40;
        assert!(NumericFormat::from_wire(&bfp).is_err());
        assert!(LayerPrecision::from_wire(&[7, 0]).is_err());
        let mut p = LayerPrecision::fp32().to_wire();
        p.push(1);
        assert!(LayerPrecision::from_wire(&p).is_err());
    }

    #[test]
    fn stochastic_bfp_draws_bits() {
        let fmt = NumericFormat::bfp_stochastic(BfpFormat::high());
        let mut t = Tensor::from_vec(vec![1, 16], (0..16).map(|i| 0.01 * i as f32).collect());
        let mut bits = fast_bfp::RngBits(rand::rngs::StdRng::seed_from_u64(1));
        fmt.quantize_matrix(&mut t, GroupAxis::AlongRow, &mut bits);
        // Should not panic and should produce quantized values.
        assert!(t.data().iter().any(|&v| v != 0.0));
    }
}
