//! Quantized convolution layers: standard [`Conv2d`] and
//! [`DepthwiseConv2d`] (for the MobileNet-style model).
//!
//! Convolutions are lowered to GEMMs over the im2col matrix (paper Fig 3);
//! operands are quantized along each GEMM's reduction axis exactly as in
//! [`crate::linear::Dense`], including the frozen-weight cache used by
//! inference-serving sessions (DESIGN.md §8).

use crate::frozen::FrozenWeight;
use crate::layer::{GemmShape, Layer, Param, QuantControlled, Session};
use crate::qgemm::{self, GemmOperand, Orient};
use crate::quant::LayerPrecision;
use fast_bfp::{GroupAxis, SrMode};
use fast_tensor::{
    col2im, gemm_out_to_nchw, im2col, im2row, kaiming_normal, nchw_to_gemm_out, row_sums,
    Conv2dDims, ExecMode, Tensor,
};
use rand::Rng;

/// A 2-D convolution layer with quantized GEMMs.
#[derive(Debug)]
pub struct Conv2d {
    w: Tensor, // (out_c, in_c, k, k)
    b: Tensor, // (out_c)
    gw: Tensor,
    gb: Tensor,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    use_bias: bool,
    precision: LayerPrecision,
    exec_mode: Option<ExecMode>,
    sr_mode: Option<SrMode>,
    frozen_w: FrozenWeight,
    saved_input: Option<Tensor>,
    last_grad: Option<Tensor>,
    last_shape: Option<GemmShape>,
    last_dims: Option<Conv2dDims>,
}

impl Conv2d {
    /// Creates a conv layer `in_c → out_c` with a square `kernel`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        use_bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_c * kernel * kernel;
        let w = kaiming_normal(vec![out_c, in_c, kernel, kernel], fan_in, rng);
        Conv2d {
            w,
            b: Tensor::zeros(vec![out_c]),
            gw: Tensor::zeros(vec![out_c, in_c, kernel, kernel]),
            gb: Tensor::zeros(vec![out_c]),
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            use_bias,
            precision: LayerPrecision::default(),
            exec_mode: None,
            sr_mode: None,
            frozen_w: FrozenWeight::default(),
            saved_input: None,
            last_grad: None,
            last_shape: None,
            last_dims: None,
        }
    }

    fn dims_for(&self, input: &Tensor) -> Conv2dDims {
        assert_eq!(input.rank(), 4, "Conv2d expects NCHW input");
        assert_eq!(input.shape()[1], self.in_c, "Conv2d channel mismatch");
        Conv2dDims {
            batch: input.shape()[0],
            in_c: self.in_c,
            in_h: input.shape()[2],
            in_w: input.shape()[3],
            out_c: self.out_c,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }
}

/// Below this many output positions the frozen path unfolds patches with
/// [`im2row`] and multiplies with [`matmul_bt`]: under `matmul`'s 32-column
/// tile width, narrow-`P` GEMMs (small inference batches on small feature
/// maps) fall into its strided column-tail loop, while the transposed
/// layout runs contiguous dot products — bit-identical either way.
const IM2ROW_MAX_P: usize = 32;

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        let d = self.dims_for(input);
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);
        let mut out_mat = if session.freeze_weights {
            // The im2col weight matrix is the (out_c, C·k²) reshape of the
            // master tensor — same row-major buffer, so the cache can build
            // (and pack) straight from it.
            let wq = self.frozen_w.get(
                &self.w,
                self.out_c,
                d.k_dim(),
                self.precision.weights,
                GroupAxis::AlongRow,
                sr,
            );
            if d.p_dim() < IM2ROW_MAX_P {
                // Transposed patches: the quantization groups that run down
                // an im2col column are exactly an im2row row's AlongRow
                // groups, so values are identical and the grouping kernel is
                // the faster row-wise one. (An SR activation format draws
                // its noise in a different element order here — same
                // distribution, different stream; deterministic rounding is
                // bit-identical. See DESIGN.md §8.) Patches stay dense:
                // they are request scratch for one narrow GEMM, so packing
                // would cost more staging than it saves.
                let rows = qgemm::prepare_owned_dense_sr(
                    session,
                    sr,
                    im2row(input, d),
                    self.precision.activations,
                    GroupAxis::AlongRow,
                );
                qgemm::execute_with(session, mode, Orient::Bt, &GemmOperand::Cached(wq), &rows)
            } else {
                let cols = qgemm::prepare_owned_dense_sr(
                    session,
                    sr,
                    im2col(input, d),
                    self.precision.activations,
                    GroupAxis::AlongCol,
                );
                qgemm::execute_with(session, mode, Orient::Nn, &GemmOperand::Cached(wq), &cols)
            }
        } else {
            // Forward GEMM `O = W_mat · cols` reduces over K = C·k²: groups
            // run down the rows of `cols` (AlongCol) and along the rows of
            // `W_mat`.
            let cols = qgemm::prepare_owned_sr(
                session,
                sr,
                im2col(input, d),
                self.precision.activations,
                GroupAxis::AlongCol,
            );
            let wq = qgemm::prepare_slice_sr(
                session,
                sr,
                self.w.data(),
                self.out_c,
                d.k_dim(),
                self.precision.weights,
                GroupAxis::AlongRow,
            );
            qgemm::execute_with(session, mode, Orient::Nn, &wq, &cols)
        };
        if self.use_bias {
            let p = d.p_dim();
            let bd = self.b.data();
            for (o, row) in out_mat.data_mut().chunks_mut(p).enumerate() {
                let bias = bd[o];
                for v in row {
                    *v += bias;
                }
            }
        }
        let out = gemm_out_to_nchw(&out_mat, d);
        self.last_shape = Some(GemmShape {
            m: d.p_dim(),
            k: d.k_dim(),
            n: self.out_c,
        });
        self.last_dims = Some(d);
        if session.train {
            self.saved_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let d = self
            .last_dims
            .expect("Conv2d::backward requires a prior forward pass");
        let x = self
            .saved_input
            .as_ref()
            .expect("Conv2d::backward requires a training-mode forward pass");
        let g_mat = nchw_to_gemm_out(grad_output, d); // (out_c, P)
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);

        // ∇W = ∇O · colsᵀ, reduction over P.
        let gq = qgemm::prepare_sr(
            session,
            sr,
            &g_mat,
            self.precision.gradients,
            GroupAxis::AlongRow,
        );
        let cols = qgemm::prepare_owned_sr(
            session,
            sr,
            im2col(x, d),
            self.precision.activations,
            GroupAxis::AlongRow,
        );
        let gw = qgemm::execute_with(session, mode, Orient::Nt, &gq, &cols).reshape(vec![
            self.out_c,
            self.in_c,
            self.kernel,
            self.kernel,
        ]);
        drop(gq);
        self.gw.add_assign(&gw);
        if self.use_bias {
            let sums = row_sums(&g_mat);
            for (g, s) in self.gb.data_mut().iter_mut().zip(sums) {
                *g += s;
            }
        }

        // ∇cols = Wᵀ · ∇O, reduction over out_c.
        let gq2 = qgemm::prepare_owned_sr(
            session,
            sr,
            g_mat,
            self.precision.gradients,
            GroupAxis::AlongCol,
        );
        let wq = qgemm::prepare_slice_sr(
            session,
            sr,
            self.w.data(),
            self.out_c,
            d.k_dim(),
            self.precision.weights,
            GroupAxis::AlongCol,
        );
        let grad_cols = qgemm::execute_with(session, mode, Orient::Tn, &wq, &gq2);
        let grad_input = col2im(&grad_cols, d);

        if session.record_sensitivity {
            self.last_grad = Some(grad_output.clone());
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.frozen_w.mark_dirty();
        f(Param {
            value: &mut self.w,
            grad: &mut self.gw,
            decay: true,
        });
        if self.use_bias {
            f(Param {
                value: &mut self.b,
                grad: &mut self.gb,
                decay: false,
            });
        }
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        f(self);
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        self.frozen_w.mark_dirty();
        v.tensor("w", &mut self.w);
        if self.use_bias {
            v.tensor("b", &mut self.b);
        }
        crate::quant::visit_precision(v, &mut self.precision);
        v.opt_tensor("saved_input", &mut self.saved_input);
        v.opt_tensor("last_grad", &mut self.last_grad);
    }

    fn kind(&self) -> &'static str {
        "conv2d"
    }
}

impl QuantControlled for Conv2d {
    fn precision_mut(&mut self) -> &mut LayerPrecision {
        &mut self.precision
    }

    fn exec_mode_mut(&mut self) -> &mut Option<ExecMode> {
        &mut self.exec_mode
    }

    fn sr_mode_mut(&mut self) -> &mut Option<SrMode> {
        &mut self.sr_mode
    }

    fn precision(&self) -> LayerPrecision {
        self.precision
    }

    fn weight(&self) -> &Tensor {
        &self.w
    }

    fn last_input(&self) -> Option<&Tensor> {
        self.saved_input.as_ref()
    }

    fn last_grad_output(&self) -> Option<&Tensor> {
        self.last_grad.as_ref()
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        self.last_shape
    }

    fn label(&self) -> String {
        format!(
            "conv{k}x{k}({}->{})",
            self.in_c,
            self.out_c,
            k = self.kernel
        )
    }
}

/// A depthwise 3×3-style convolution: each input channel is convolved with
/// its own single kernel (groups = channels), as used by MobileNet blocks.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    w: Tensor, // (c, 1, k, k)
    gw: Tensor,
    channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    precision: LayerPrecision,
    exec_mode: Option<ExecMode>,
    sr_mode: Option<SrMode>,
    frozen_w: FrozenWeight,
    saved_input: Option<Tensor>,
    last_grad: Option<Tensor>,
    last_shape: Option<GemmShape>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise conv over `channels` channels.
    pub fn new(
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = kernel * kernel;
        DepthwiseConv2d {
            w: kaiming_normal(vec![channels, 1, kernel, kernel], fan_in, rng),
            gw: Tensor::zeros(vec![channels, 1, kernel, kernel]),
            channels,
            kernel,
            stride,
            pad,
            precision: LayerPrecision::default(),
            exec_mode: None,
            sr_mode: None,
            frozen_w: FrozenWeight::default(),
            saved_input: None,
            last_grad: None,
            last_shape: None,
        }
    }

    fn channel_dims(&self, input: &Tensor) -> Conv2dDims {
        Conv2dDims {
            batch: input.shape()[0],
            in_c: 1,
            in_h: input.shape()[2],
            in_w: input.shape()[3],
            out_c: 1,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    fn slice_channel(input: &Tensor, c: usize) -> Tensor {
        let (b, cs, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let mut out = Tensor::zeros(vec![b, 1, h, w]);
        for bi in 0..b {
            let src = &input.data()[((bi * cs + c) * h * w)..((bi * cs + c) * h * w + h * w)];
            out.data_mut()[bi * h * w..(bi + 1) * h * w].copy_from_slice(src);
        }
        out
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 4, "DepthwiseConv2d expects NCHW input");
        assert_eq!(input.shape()[1], self.channels, "channel mismatch");
        let d = self.channel_dims(input);
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);
        let (b, oh, ow) = (d.batch, d.out_h(), d.out_w());
        let mut out = Tensor::zeros(vec![b, self.channels, oh, ow]);
        let k2 = self.kernel * self.kernel;
        // Each channel's kernel row is quantized as its own (1, k²) matrix;
        // the frozen cache builds all rows at once with per-row windows so
        // both paths see identical values. The cached tensor is borrowed
        // (no whole-tensor copy); the loop still re-wraps each k²-float row
        // into a (1, k²) tensor, which skips the quantization, not the
        // (tiny) row copy.
        let frozen_rows: Option<&Tensor> = if session.freeze_weights {
            self.frozen_w
                .get_per_row(&self.w, self.channels, k2, self.precision.weights, sr)
                .dense()
        } else {
            None
        };
        for c in 0..self.channels {
            let xc = Self::slice_channel(input, c);
            let cols = qgemm::prepare_owned_sr(
                session,
                sr,
                im2col(&xc, d), // (k², B·OH·OW)
                self.precision.activations,
                GroupAxis::AlongCol,
            );
            let w_row = match &frozen_rows {
                Some(rows) => GemmOperand::Own(crate::qgemm::Prepared::Dense(Tensor::from_vec(
                    vec![1, k2],
                    rows.data()[c * k2..(c + 1) * k2].to_vec(),
                ))),
                None => qgemm::prepare_slice_sr(
                    session,
                    sr,
                    &self.w.data()[c * k2..(c + 1) * k2],
                    1,
                    k2,
                    self.precision.weights,
                    GroupAxis::AlongRow,
                ),
            };
            let out_mat = qgemm::execute_with(session, mode, Orient::Nn, &w_row, &cols); // (1, B·OH·OW)
            let od = out.data_mut();
            for bi in 0..b {
                for p in 0..oh * ow {
                    od[((bi * self.channels + c) * oh * ow) + p] = out_mat.data()[bi * oh * ow + p];
                }
            }
        }
        self.last_shape = Some(GemmShape {
            m: b * oh * ow,
            k: k2,
            n: self.channels,
        });
        if session.train {
            self.saved_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, session: &mut Session) -> Tensor {
        let x = self
            .saved_input
            .as_ref()
            .expect("DepthwiseConv2d::backward requires a training-mode forward pass");
        let d = self.channel_dims(x);
        let mode = self.exec_mode.unwrap_or(session.exec_mode);
        let sr = self.sr_mode.unwrap_or(session.sr_mode);
        let (b, h, w) = (d.batch, d.in_h, d.in_w);
        let k2 = self.kernel * self.kernel;
        let mut grad_input = Tensor::zeros(vec![b, self.channels, h, w]);
        for c in 0..self.channels {
            let xc = Self::slice_channel(x, c);
            let gc = Self::slice_channel(grad_output, c);
            let g_mat = nchw_to_gemm_out(&gc, d); // (1, B·OH·OW)

            // ∇W row = ∇O · colsᵀ.
            let gq = qgemm::prepare_sr(
                session,
                sr,
                &g_mat,
                self.precision.gradients,
                GroupAxis::AlongRow,
            );
            let cols = qgemm::prepare_owned_sr(
                session,
                sr,
                im2col(&xc, d),
                self.precision.activations,
                GroupAxis::AlongRow,
            );
            let gw_row = qgemm::execute_with(session, mode, Orient::Nt, &gq, &cols); // (1, k²)
            drop(gq);
            for (i, &v) in gw_row.data().iter().enumerate() {
                self.gw.data_mut()[c * k2 + i] += v;
            }

            // ∇cols = wᵀ · ∇O.
            let gq2 = qgemm::prepare_owned_sr(
                session,
                sr,
                g_mat,
                self.precision.gradients,
                GroupAxis::AlongCol,
            );
            let wq = qgemm::prepare_slice_sr(
                session,
                sr,
                &self.w.data()[c * k2..(c + 1) * k2],
                1,
                k2,
                self.precision.weights,
                GroupAxis::AlongCol,
            );
            let grad_cols = qgemm::execute_with(session, mode, Orient::Tn, &wq, &gq2); // (k², B·OH·OW)
            let gic = col2im(&grad_cols, d); // (B,1,H,W)
            for bi in 0..b {
                for p in 0..h * w {
                    grad_input.data_mut()[((bi * self.channels + c) * h * w) + p] +=
                        gic.data()[bi * h * w + p];
                }
            }
        }
        if session.record_sensitivity {
            self.last_grad = Some(grad_output.clone());
        }
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        self.frozen_w.mark_dirty();
        f(Param {
            value: &mut self.w,
            grad: &mut self.gw,
            decay: true,
        });
    }

    fn visit_quant(&mut self, f: &mut dyn FnMut(&mut dyn QuantControlled)) {
        f(self);
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        self.frozen_w.mark_dirty();
        v.tensor("w", &mut self.w);
        crate::quant::visit_precision(v, &mut self.precision);
        v.opt_tensor("saved_input", &mut self.saved_input);
        v.opt_tensor("last_grad", &mut self.last_grad);
    }

    fn kind(&self) -> &'static str {
        "depthwise_conv2d"
    }
}

impl QuantControlled for DepthwiseConv2d {
    fn precision_mut(&mut self) -> &mut LayerPrecision {
        &mut self.precision
    }

    fn exec_mode_mut(&mut self) -> &mut Option<ExecMode> {
        &mut self.exec_mode
    }

    fn sr_mode_mut(&mut self) -> &mut Option<SrMode> {
        &mut self.sr_mode
    }

    fn precision(&self) -> LayerPrecision {
        self.precision
    }

    fn weight(&self) -> &Tensor {
        &self.w
    }

    fn last_input(&self) -> Option<&Tensor> {
        self.saved_input.as_ref()
    }

    fn last_grad_output(&self) -> Option<&Tensor> {
        self.last_grad.as_ref()
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        self.last_shape
    }

    fn label(&self) -> String {
        format!("dwconv{k}x{k}({})", self.channels, k = self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fast_tensor::conv2d;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn conv_layer_matches_tensor_conv_in_fp32() {
        let mut r = rng();
        let mut layer = Conv2d::new(3, 5, 3, 1, 1, false, &mut r);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![2, 3, 6, 6],
            (0..216).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        );
        let y = layer.forward(&x, &mut s);
        let d = layer.dims_for(&x);
        let want = conv2d(&x, &layer.w, d);
        for (a, b) in y.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_gradient_check_fp32() {
        let mut r = rng();
        let mut layer = Conv2d::new(2, 3, 3, 1, 1, true, &mut r);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![1, 2, 5, 5],
            (0..50).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        );
        let out = layer.forward(&x, &mut s);
        let gout = Tensor::full(out.shape().to_vec(), 1.0);
        let gin = layer.backward(&gout, &mut s);
        let analytic_w = layer.gw.clone();

        let eps = 1e-3f32;
        for idx in [0usize, 13, 29, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = layer.forward(&xm, &mut s).data().iter().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2, "input grad {idx}");
        }
        for idx in [0usize, 17, 35, 53] {
            let orig = layer.w.data()[idx];
            layer.w.data_mut()[idx] = orig + eps;
            let lp: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig - eps;
            let lm: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic_w.data()[idx]).abs() < 1e-2,
                "weight grad {idx}"
            );
        }
    }

    #[test]
    fn depthwise_matches_per_channel_conv() {
        let mut r = rng();
        let mut layer = DepthwiseConv2d::new(3, 3, 1, 1, &mut r);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![1, 3, 4, 4],
            (0..48).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        );
        let y = layer.forward(&x, &mut s);
        // Per-channel reference.
        for c in 0..3 {
            let xc = DepthwiseConv2d::slice_channel(&x, c);
            let wc = Tensor::from_vec(
                vec![1, 1, 3, 3],
                layer.w.data()[c * 9..(c + 1) * 9].to_vec(),
            );
            let d = layer.channel_dims(&x);
            let want = conv2d(&xc, &wc, d);
            for p in 0..16 {
                let got = y.data()[c * 16 + p];
                assert!((got - want.data()[p]).abs() < 1e-5, "c={c} p={p}");
            }
        }
    }

    #[test]
    fn depthwise_gradient_check() {
        let mut r = rng();
        let mut layer = DepthwiseConv2d::new(2, 3, 1, 1, &mut r);
        let mut s = Session::new(0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![1, 2, 4, 4],
            (0..32).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        );
        let out = layer.forward(&x, &mut s);
        let gout = Tensor::full(out.shape().to_vec(), 1.0);
        let gin = layer.backward(&gout, &mut s);
        let analytic_w = layer.gw.clone();
        let eps = 1e-3f32;
        for idx in [0usize, 9, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer.forward(&xp, &mut s).data().iter().sum();
            let lm: f32 = layer.forward(&xm, &mut s).data().iter().sum();
            assert!(((lp - lm) / (2.0 * eps) - gin.data()[idx]).abs() < 1e-2);
        }
        for idx in [0usize, 8, 17] {
            let orig = layer.w.data()[idx];
            layer.w.data_mut()[idx] = orig + eps;
            let lp: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig - eps;
            let lm: f32 = layer.forward(&x, &mut s).data().iter().sum();
            layer.w.data_mut()[idx] = orig;
            assert!(((lp - lm) / (2.0 * eps) - analytic_w.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn depthwise_frozen_forward_is_bit_identical() {
        use crate::layer::QuantControlled;
        use crate::quant::{LayerPrecision, NumericFormat};
        use fast_bfp::{BfpFormat, Rounding};
        // A windowed format is the case the per-row cache build exists for:
        // each channel row must take its own exponent window, not one
        // window shared across the whole weight tensor.
        let windowed = NumericFormat::Bfp {
            format: BfpFormat::new(4, 3, 2).unwrap(),
            rounding: Rounding::Nearest,
            windowed: true,
        };
        let mut r = rng();
        let mut layer = DepthwiseConv2d::new(3, 3, 1, 1, &mut r);
        // Spread channel kernels over many octaves so per-row vs whole-
        // tensor windows actually disagree.
        for (i, v) in layer.w.data_mut().iter_mut().enumerate() {
            *v = (1.5 + (i % 5) as f32) * 2.0f32.powi(-((i / 9) as i32 * 6));
        }
        *layer.precision_mut() = LayerPrecision {
            weights: windowed,
            activations: NumericFormat::Fp32,
            gradients: NumericFormat::Fp32,
        };
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![2, 3, 4, 4],
            (0..96).map(|_| r.gen_range(-1.0f32..1.0)).collect(),
        );
        let want = layer.forward(&x, &mut Session::eval(0));
        let mut frozen = Session::inference(0);
        assert_eq!(layer.forward(&x, &mut frozen), want);
        // Cache replay stays identical.
        assert_eq!(layer.forward(&x, &mut frozen), want);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let mut r = rng();
        let mut layer = Conv2d::new(1, 1, 3, 2, 1, false, &mut r);
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![1, 1, 8, 8]);
        let y = layer.forward(&x, &mut s);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }
}
