//! A plain multi-layer perceptron, used by the quickstart example and the
//! cluster-classification sanity tasks.

use crate::act::Relu;
use crate::linear::Dense;
use crate::model::Sequential;
use rand::Rng;

/// Builds an MLP with ReLU between consecutive [`Dense`] layers.
///
/// `dims = [in, h1, ..., out]` — at least two entries.
///
/// # Panics
///
/// Panics if fewer than two dims are given.
pub fn mlp(dims: &[usize], rng: &mut impl Rng) -> Sequential {
    assert!(
        dims.len() >= 2,
        "an MLP needs at least input and output dims"
    );
    let mut model = Sequential::new();
    for i in 0..dims.len() - 1 {
        model.add(Box::new(Dense::new(dims[i], dims[i + 1], true, rng)));
        if i + 2 < dims.len() {
            model.add(Box::new(Relu::new()));
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn mlp_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = mlp(&[4, 8, 8, 3], &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![2, 4]), &mut s);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(quant_layer_count(&mut m), 3);
    }
}
