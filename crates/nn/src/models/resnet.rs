//! ResNet-style CNNs ("ResNetLite") — the scaled-down analogues of
//! ResNet-18/20/50 used throughout the paper's evaluation.

use crate::act::Relu;
use crate::conv::Conv2d;
use crate::linear::Dense;
use crate::model::{Residual, Sequential};
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;
use rand::Rng;

/// Configuration for [`resnet_lite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Stem width; stages use `w, 2w, 4w` (or `w` everywhere if symmetric).
    pub stem_channels: usize,
    /// Residual blocks per stage.
    pub blocks_per_stage: [usize; 3],
    /// Classifier classes.
    pub num_classes: usize,
    /// When set, all stages keep the stem width and stride 1 so the first
    /// and second halves of the network have identical filter layouts —
    /// the modified ResNet-20 of the paper's layerwise experiment (Fig 9
    /// right).
    pub symmetric: bool,
}

impl ResNetConfig {
    /// A ResNet-20-like default for 10-class synthetic CIFAR: 3 stages × 3
    /// blocks.
    pub fn resnet20(stem_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            stem_channels,
            blocks_per_stage: [3, 3, 3],
            num_classes,
            symmetric: false,
        }
    }

    /// A ResNet-18-like variant (2 blocks per stage).
    pub fn resnet18(stem_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            stem_channels,
            blocks_per_stage: [2, 2, 2],
            num_classes,
            symmetric: false,
        }
    }

    /// A deeper ResNet-50-like variant (4 blocks per stage).
    pub fn resnet50(stem_channels: usize, num_classes: usize) -> Self {
        ResNetConfig {
            in_channels: 3,
            stem_channels,
            blocks_per_stage: [4, 4, 4],
            num_classes,
            symmetric: false,
        }
    }
}

fn basic_block(c_in: usize, c_out: usize, stride: usize, rng: &mut impl Rng) -> Sequential {
    let main = Sequential::new()
        .push(Conv2d::new(c_in, c_out, 3, stride, 1, false, rng))
        .push(BatchNorm2d::new(c_out))
        .push(Relu::new())
        .push(Conv2d::new(c_out, c_out, 3, 1, 1, false, rng))
        .push(BatchNorm2d::new(c_out));
    let block = if c_in != c_out || stride != 1 {
        let shortcut = Sequential::new()
            .push(Conv2d::new(c_in, c_out, 1, stride, 0, false, rng))
            .push(BatchNorm2d::new(c_out));
        Residual::with_shortcut(main, shortcut)
    } else {
        Residual::new(main)
    };
    Sequential::new().push(block).push(Relu::new())
}

/// Builds a ResNet-style CNN per `cfg`.
pub fn resnet_lite(cfg: ResNetConfig, rng: &mut impl Rng) -> Sequential {
    let w = cfg.stem_channels;
    let mut model = Sequential::new()
        .push(Conv2d::new(cfg.in_channels, w, 3, 1, 1, false, rng))
        .push(BatchNorm2d::new(w))
        .push(Relu::new());
    let mut c_in = w;
    for (stage, &blocks) in cfg.blocks_per_stage.iter().enumerate() {
        let c_out = if cfg.symmetric { w } else { w << stage };
        for b in 0..blocks {
            let stride = if !cfg.symmetric && stage > 0 && b == 0 {
                2
            } else {
                1
            };
            model.add(Box::new(basic_block(c_in, c_out, stride, rng)));
            c_in = c_out;
        }
    }
    model.add(Box::new(GlobalAvgPool::new()));
    model.add(Box::new(Dense::new(c_in, cfg.num_classes, true, rng)));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn resnet20_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = resnet_lite(ResNetConfig::resnet20(8, 10), &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![2, 3, 16, 16]), &mut s);
        assert_eq!(y.shape(), &[2, 10]);
        // 1 stem + 9 blocks × 2 convs + 2 projection shortcuts + 1 dense.
        assert_eq!(quant_layer_count(&mut m), 1 + 18 + 2 + 1);
    }

    #[test]
    fn symmetric_variant_keeps_uniform_layout() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = ResNetConfig {
            symmetric: true,
            ..ResNetConfig::resnet20(8, 10)
        };
        let mut m = resnet_lite(cfg, &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![1, 3, 16, 16]), &mut s);
        assert_eq!(y.shape(), &[1, 10]);
        // No projection shortcuts in the symmetric variant.
        assert_eq!(quant_layer_count(&mut m), 1 + 18 + 1);
    }

    #[test]
    fn backward_runs_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut m = resnet_lite(ResNetConfig::resnet18(4, 5), &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![2, 3, 8, 8]);
        let y = m.forward(&x, &mut s);
        let g = m.backward(&y, &mut s);
        assert_eq!(g.shape(), x.shape());
    }
}
