//! The model zoo: scaled-down analogues of the paper's six evaluation DNNs
//! (ResNet-18/50, MobileNet-v2, VGG-16, 12-layer Transformer, YOLOv2),
//! structurally faithful — conv/BN/residual stacks, depthwise separables,
//! attention blocks, and a grid detection head — at laptop scale.

mod mlp;
mod mobilenet;
mod resnet;
mod transformer;
mod vgg;
mod yolo;

pub use mlp::mlp;
pub use mobilenet::{mobilenet_lite, MobileNetConfig};
pub use resnet::{resnet_lite, ResNetConfig};
pub use transformer::{tiny_transformer, TransformerConfig};
pub use vgg::{vgg_lite, VggConfig};
pub use yolo::{decode_predictions, map_lite, tiny_yolo, yolo_loss, DetBox, GtBox, YoloConfig};
