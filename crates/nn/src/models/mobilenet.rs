//! A MobileNet-style CNN ("MobileNetLite") built from depthwise-separable
//! blocks — the analogue of MobileNet-v2 in the paper's evaluation.

use crate::act::Relu;
use crate::conv::{Conv2d, DepthwiseConv2d};
use crate::linear::Dense;
use crate::model::Sequential;
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;
use rand::Rng;

/// Configuration for [`mobilenet_lite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobileNetConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Stem width.
    pub stem_channels: usize,
    /// Number of depthwise-separable blocks; widths double every other
    /// block, strides of 2 at each doubling.
    pub blocks: usize,
    /// Number of classes.
    pub num_classes: usize,
}

fn separable(c_in: usize, c_out: usize, stride: usize, rng: &mut impl Rng) -> Sequential {
    Sequential::new()
        .push(DepthwiseConv2d::new(c_in, 3, stride, 1, rng))
        .push(BatchNorm2d::new(c_in))
        .push(Relu::new())
        .push(Conv2d::new(c_in, c_out, 1, 1, 0, false, rng))
        .push(BatchNorm2d::new(c_out))
        .push(Relu::new())
}

/// Builds a MobileNet-style CNN.
pub fn mobilenet_lite(cfg: MobileNetConfig, rng: &mut impl Rng) -> Sequential {
    let mut model = Sequential::new()
        .push(Conv2d::new(
            cfg.in_channels,
            cfg.stem_channels,
            3,
            1,
            1,
            false,
            rng,
        ))
        .push(BatchNorm2d::new(cfg.stem_channels))
        .push(Relu::new());
    let mut c = cfg.stem_channels;
    for b in 0..cfg.blocks {
        let widen = b % 2 == 1;
        let c_out = if widen { c * 2 } else { c };
        let stride = if widen { 2 } else { 1 };
        model.add(Box::new(separable(c, c_out, stride, rng)));
        c = c_out;
    }
    model.add(Box::new(GlobalAvgPool::new()));
    model.add(Box::new(Dense::new(c, cfg.num_classes, true, rng)));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn mobilenet_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = MobileNetConfig {
            in_channels: 3,
            stem_channels: 8,
            blocks: 4,
            num_classes: 10,
        };
        let mut m = mobilenet_lite(cfg, &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![2, 3, 16, 16]), &mut s);
        assert_eq!(y.shape(), &[2, 10]);
        // stem + 4 blocks × (dw + pw) + classifier.
        assert_eq!(quant_layer_count(&mut m), 1 + 8 + 1);
    }

    #[test]
    fn backward_runs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = MobileNetConfig {
            in_channels: 3,
            stem_channels: 4,
            blocks: 2,
            num_classes: 5,
        };
        let mut m = mobilenet_lite(cfg, &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![1, 3, 8, 8]);
        let y = m.forward(&x, &mut s);
        let g = m.backward(&y, &mut s);
        assert_eq!(g.shape(), x.shape());
    }
}
