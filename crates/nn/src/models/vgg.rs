//! A VGG-style plain CNN ("VggLite") — conv/conv/pool stacks with an FC
//! classifier, the analogue of VGG-16 in the paper's Table II / Fig 20.

use crate::act::Relu;
use crate::conv::Conv2d;
use crate::linear::Dense;
use crate::model::Sequential;
use crate::norm::BatchNorm2d;
use crate::pool::{Flatten, MaxPool2d};
use rand::Rng;

/// Configuration for [`vgg_lite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VggConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input image side (must be divisible by 8 — three 2× pools).
    pub image_size: usize,
    /// Base width; stages use `w, 2w, 4w`.
    pub base_channels: usize,
    /// Hidden width of the FC classifier.
    pub fc_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
}

/// Builds a VGG-style CNN: three conv-conv-pool stages plus a two-layer FC
/// head. Batch-norm is added after each conv for small-data stability (a
/// recorded deviation from the original VGG-16).
///
/// # Panics
///
/// Panics if `image_size` is not divisible by 8.
pub fn vgg_lite(cfg: VggConfig, rng: &mut impl Rng) -> Sequential {
    assert_eq!(cfg.image_size % 8, 0, "image size must be divisible by 8");
    let mut model = Sequential::new();
    let mut c_in = cfg.in_channels;
    for stage in 0..3 {
        let c_out = cfg.base_channels << stage;
        for _ in 0..2 {
            model.add(Box::new(Conv2d::new(c_in, c_out, 3, 1, 1, false, rng)));
            model.add(Box::new(BatchNorm2d::new(c_out)));
            model.add(Box::new(Relu::new()));
            c_in = c_out;
        }
        model.add(Box::new(MaxPool2d::new(2)));
    }
    let spatial = cfg.image_size / 8;
    let flat = c_in * spatial * spatial;
    model.add(Box::new(Flatten::new()));
    model.add(Box::new(Dense::new(flat, cfg.fc_dim, true, rng)));
    model.add(Box::new(Relu::new()));
    model.add(Box::new(Dense::new(cfg.fc_dim, cfg.num_classes, true, rng)));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn vgg_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = VggConfig {
            in_channels: 3,
            image_size: 16,
            base_channels: 8,
            fc_dim: 32,
            num_classes: 10,
        };
        let mut m = vgg_lite(cfg, &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![2, 3, 16, 16]), &mut s);
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(quant_layer_count(&mut m), 6 + 2);
    }
}
