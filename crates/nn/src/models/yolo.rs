//! A YOLO-style single-shot detector ("TinyYolo") — the analogue of YOLOv2
//! on VOC2012 in the paper's Table II / Fig 20 — plus its loss, box
//! decoding, and a mAP metric.
//!
//! The detector predicts one box per grid cell: channels
//! `[obj, tx, ty, tw, th, class_0..class_C)` over an `S×S` grid. Box
//! centers are `sigmoid(tx/ty)` offsets within the cell; sizes are
//! `sigmoid(tw/th)` fractions of the image.

use crate::act::LeakyRelu;
use crate::conv::Conv2d;
use crate::loss::bce_with_logit;
use crate::model::Sequential;
use crate::norm::BatchNorm2d;
use crate::pool::MaxPool2d;
use fast_tensor::{argmax, Tensor};
use rand::Rng;

/// Configuration for [`tiny_yolo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YoloConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input image side; must be `grid * 2^downsamples`.
    pub image_size: usize,
    /// Output grid side `S`.
    pub grid: usize,
    /// Number of object classes.
    pub num_classes: usize,
    /// Backbone base width.
    pub base_channels: usize,
}

impl YoloConfig {
    /// Output channels per cell: `5 + num_classes`.
    pub fn out_channels(&self) -> usize {
        5 + self.num_classes
    }
}

/// A ground-truth box in normalized center format (all in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Center x.
    pub cx: f32,
    /// Center y.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
    /// Class index.
    pub class: usize,
}

/// A decoded detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetBox {
    /// Center x.
    pub cx: f32,
    /// Center y.
    pub cy: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
    /// Predicted class.
    pub class: usize,
    /// Confidence score (objectness × class probability).
    pub score: f32,
}

/// Builds the TinyYolo network: a LeakyReLU conv backbone that downsamples
/// `image_size → grid`, then a 1×1 detection head.
///
/// # Panics
///
/// Panics if `image_size / grid` is not a power of two ≥ 2.
pub fn tiny_yolo(cfg: YoloConfig, rng: &mut impl Rng) -> Sequential {
    assert!(
        cfg.image_size.is_multiple_of(cfg.grid),
        "grid must divide image size"
    );
    let factor = cfg.image_size / cfg.grid;
    assert!(
        factor.is_power_of_two() && factor >= 2,
        "downsample factor must be a power of two >= 2"
    );
    let stages = factor.trailing_zeros() as usize;
    let mut model = Sequential::new();
    let mut c_in = cfg.in_channels;
    for s in 0..stages {
        let c_out = cfg.base_channels << s.min(2);
        model.add(Box::new(Conv2d::new(c_in, c_out, 3, 1, 1, false, rng)));
        model.add(Box::new(BatchNorm2d::new(c_out)));
        model.add(Box::new(LeakyRelu::new(0.1)));
        model.add(Box::new(MaxPool2d::new(2)));
        c_in = c_out;
    }
    model.add(Box::new(Conv2d::new(c_in, c_in, 3, 1, 1, false, rng)));
    model.add(Box::new(BatchNorm2d::new(c_in)));
    model.add(Box::new(LeakyRelu::new(0.1)));
    model.add(Box::new(Conv2d::new(
        c_in,
        cfg.out_channels(),
        1,
        1,
        0,
        true,
        rng,
    )));
    model
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// YOLO training loss over a batch.
///
/// `pred` is `(batch, 5+C, S, S)`; `targets[b]` lists the ground-truth boxes
/// of image `b`. Returns `(loss, grad_wrt_pred)`.
///
/// Components (weights as in YOLO): coordinates `λ=5` (MSE, assigned cells),
/// objectness (BCE; no-object cells weighted 0.5), class (softmax CE).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn yolo_loss(pred: &Tensor, targets: &[Vec<GtBox>], cfg: YoloConfig) -> (f64, Tensor) {
    let s = cfg.grid;
    let c = cfg.num_classes;
    assert_eq!(
        pred.shape(),
        &[targets.len(), 5 + c, s, s],
        "prediction shape mismatch"
    );
    let batch = targets.len();
    let lambda_coord = 5.0f32;
    let lambda_noobj = 0.5f32;
    let mut grad = pred.zeros_like();
    let mut loss = 0.0f64;
    let plane = s * s;
    let at = |b: usize, ch: usize, cell: usize| ((b * (5 + c) + ch) * plane) + cell;

    for (b, boxes) in targets.iter().enumerate() {
        // Assign at most one gt box per cell (first wins).
        let mut assigned: Vec<Option<GtBox>> = vec![None; plane];
        for gb in boxes {
            let gx = ((gb.cx * s as f32) as usize).min(s - 1);
            let gy = ((gb.cy * s as f32) as usize).min(s - 1);
            let cell = gy * s + gx;
            if assigned[cell].is_none() {
                assigned[cell] = Some(*gb);
            }
        }
        for (cell, slot) in assigned.iter().enumerate() {
            let obj_logit = pred.data()[at(b, 0, cell)];
            match *slot {
                Some(gb) => {
                    // Objectness toward 1.
                    let (l, g) = bce_with_logit(obj_logit, 1.0);
                    loss += l as f64;
                    grad.data_mut()[at(b, 0, cell)] += g;
                    // Coordinates.
                    let gx_cell = (cell % s) as f32;
                    let gy_cell = (cell / s) as f32;
                    let tx_target = gb.cx * s as f32 - gx_cell; // in [0,1)
                    let ty_target = gb.cy * s as f32 - gy_cell;
                    for (ch, target) in [(1, tx_target), (2, ty_target), (3, gb.w), (4, gb.h)] {
                        let t_pred = sigmoid(pred.data()[at(b, ch, cell)]);
                        let d = t_pred - target;
                        loss += (lambda_coord * d * d) as f64;
                        let dsig = t_pred * (1.0 - t_pred);
                        grad.data_mut()[at(b, ch, cell)] += 2.0 * lambda_coord * d * dsig;
                    }
                    // Class cross-entropy.
                    let mut logits: Vec<f32> =
                        (0..c).map(|k| pred.data()[at(b, 5 + k, cell)]).collect();
                    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
                    let mut sum = 0.0f32;
                    for v in logits.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    for v in logits.iter_mut() {
                        *v /= sum;
                    }
                    loss -= (logits[gb.class].max(1e-12) as f64).ln();
                    for (k, &softmax) in logits.iter().enumerate() {
                        let delta = if k == gb.class { 1.0 } else { 0.0 };
                        grad.data_mut()[at(b, 5 + k, cell)] += softmax - delta;
                    }
                }
                None => {
                    let (l, g) = bce_with_logit(obj_logit, 0.0);
                    loss += (lambda_noobj * l) as f64;
                    grad.data_mut()[at(b, 0, cell)] += lambda_noobj * g;
                }
            }
        }
    }
    let inv = 1.0 / batch as f32;
    grad.scale(inv);
    (loss / batch as f64, grad)
}

/// Decodes predictions into per-image detection lists, keeping cells with
/// `sigmoid(obj) > conf_threshold`.
///
/// # Panics
///
/// Panics if `pred` is not `(batch, 5+C, S, S)`.
pub fn decode_predictions(pred: &Tensor, cfg: YoloConfig, conf_threshold: f32) -> Vec<Vec<DetBox>> {
    let s = cfg.grid;
    let c = cfg.num_classes;
    assert_eq!(pred.rank(), 4);
    assert_eq!(
        &pred.shape()[1..],
        &[5 + c, s, s],
        "prediction shape mismatch"
    );
    let batch = pred.shape()[0];
    let plane = s * s;
    let at = |b: usize, ch: usize, cell: usize| ((b * (5 + c) + ch) * plane) + cell;
    let mut out = Vec::with_capacity(batch);
    for b in 0..batch {
        let mut dets = Vec::new();
        for cell in 0..plane {
            let conf = sigmoid(pred.data()[at(b, 0, cell)]);
            if conf <= conf_threshold {
                continue;
            }
            let cx = ((cell % s) as f32 + sigmoid(pred.data()[at(b, 1, cell)])) / s as f32;
            let cy = ((cell / s) as f32 + sigmoid(pred.data()[at(b, 2, cell)])) / s as f32;
            let w = sigmoid(pred.data()[at(b, 3, cell)]);
            let h = sigmoid(pred.data()[at(b, 4, cell)]);
            let logits: Vec<f32> = (0..c).map(|k| pred.data()[at(b, 5 + k, cell)]).collect();
            let class = argmax(&logits);
            // Softmax probability of the argmax class.
            let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum();
            let p = (logits[class] - max).exp() / sum;
            dets.push(DetBox {
                cx,
                cy,
                w,
                h,
                class,
                score: conf * p,
            });
        }
        dets.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        out.push(dets);
    }
    out
}

/// Intersection-over-union of two center-format boxes.
fn iou(a: (f32, f32, f32, f32), b: (f32, f32, f32, f32)) -> f32 {
    let (ax1, ay1, ax2, ay2) = (
        a.0 - a.2 / 2.0,
        a.1 - a.3 / 2.0,
        a.0 + a.2 / 2.0,
        a.1 + a.3 / 2.0,
    );
    let (bx1, by1, bx2, by2) = (
        b.0 - b.2 / 2.0,
        b.1 - b.3 / 2.0,
        b.0 + b.2 / 2.0,
        b.1 + b.3 / 2.0,
    );
    let ix = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
    let iy = (ay2.min(by2) - ay1.max(by1)).max(0.0);
    let inter = ix * iy;
    let union = (ax2 - ax1) * (ay2 - ay1) + (bx2 - bx1) * (by2 - by1) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Mean average precision at the given IoU threshold (all-point
/// interpolation), the test metric for the detection workload.
///
/// `detections[i]` / `ground_truth[i]` describe image `i`.
pub fn map_lite(
    detections: &[Vec<DetBox>],
    ground_truth: &[Vec<GtBox>],
    num_classes: usize,
    iou_threshold: f32,
) -> f64 {
    assert_eq!(detections.len(), ground_truth.len(), "image count mismatch");
    let mut aps = Vec::new();
    for class in 0..num_classes {
        let total_gt: usize = ground_truth
            .iter()
            .map(|g| g.iter().filter(|b| b.class == class).count())
            .sum();
        if total_gt == 0 {
            continue;
        }
        // All detections of this class across images, sorted by score.
        let mut dets: Vec<(usize, DetBox)> = Vec::new();
        for (img, ds) in detections.iter().enumerate() {
            for d in ds.iter().filter(|d| d.class == class) {
                dets.push((img, *d));
            }
        }
        dets.sort_by(|a, b| {
            b.1.score
                .partial_cmp(&a.1.score)
                .expect("scores are finite")
        });
        let mut matched: Vec<Vec<bool>> =
            ground_truth.iter().map(|g| vec![false; g.len()]).collect();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut curve: Vec<(f64, f64)> = Vec::new(); // (recall, precision)
        for (img, d) in dets {
            let gts = &ground_truth[img];
            let mut best_iou = 0.0f32;
            let mut best_j = None;
            for (j, g) in gts.iter().enumerate() {
                if g.class != class || matched[img][j] {
                    continue;
                }
                let i = iou((d.cx, d.cy, d.w, d.h), (g.cx, g.cy, g.w, g.h));
                if i > best_iou {
                    best_iou = i;
                    best_j = Some(j);
                }
            }
            if best_iou >= iou_threshold {
                matched[img][best_j.expect("best_j set when IoU positive")] = true;
                tp += 1;
            } else {
                fp += 1;
            }
            curve.push((tp as f64 / total_gt as f64, tp as f64 / (tp + fp) as f64));
        }
        // All-point interpolated AP.
        let mut ap = 0.0f64;
        let mut prev_recall = 0.0f64;
        let mut i = 0;
        while i < curve.len() {
            let r = curve[i].0;
            // Max precision at recall >= r.
            let pmax = curve[i..].iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
            ap += (r - prev_recall) * pmax;
            prev_recall = r;
            // Skip to the next distinct recall level.
            while i < curve.len() && curve[i].0 <= r {
                i += 1;
            }
        }
        aps.push(ap);
    }
    if aps.is_empty() {
        0.0
    } else {
        100.0 * aps.iter().sum::<f64>() / aps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Session};
    use rand::SeedableRng;

    fn cfg() -> YoloConfig {
        YoloConfig {
            in_channels: 3,
            image_size: 16,
            grid: 4,
            num_classes: 3,
            base_channels: 8,
        }
    }

    #[test]
    fn yolo_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut m = tiny_yolo(cfg(), &mut rng);
        let mut s = Session::new(0);
        let y = m.forward(&Tensor::zeros(vec![2, 3, 16, 16]), &mut s);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn loss_gradient_check() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        use rand::Rng;
        let pred = Tensor::from_vec(
            vec![1, 8, 4, 4],
            (0..128).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let targets = vec![vec![GtBox {
            cx: 0.3,
            cy: 0.6,
            w: 0.2,
            h: 0.3,
            class: 1,
        }]];
        let (_, grad) = yolo_loss(&pred, &targets, c);
        let eps = 1e-3f32;
        for idx in [0usize, 16, 33, 57, 90, 127] {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let (lp, _) = yolo_loss(&pp, &targets, c);
            let (lm, _) = yolo_loss(&pm, &targets, c);
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad.data()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {num} vs analytic {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn iou_of_identical_boxes_is_one() {
        assert!((iou((0.5, 0.5, 0.2, 0.2), (0.5, 0.5, 0.2, 0.2)) - 1.0).abs() < 1e-6);
        assert_eq!(iou((0.1, 0.1, 0.1, 0.1), (0.9, 0.9, 0.1, 0.1)), 0.0);
    }

    #[test]
    fn perfect_detections_score_full_map() {
        let gts = vec![
            vec![GtBox {
                cx: 0.25,
                cy: 0.25,
                w: 0.2,
                h: 0.2,
                class: 0,
            }],
            vec![GtBox {
                cx: 0.75,
                cy: 0.75,
                w: 0.3,
                h: 0.3,
                class: 1,
            }],
        ];
        let dets = vec![
            vec![DetBox {
                cx: 0.25,
                cy: 0.25,
                w: 0.2,
                h: 0.2,
                class: 0,
                score: 0.9,
            }],
            vec![DetBox {
                cx: 0.75,
                cy: 0.75,
                w: 0.3,
                h: 0.3,
                class: 1,
                score: 0.8,
            }],
        ];
        assert!((map_lite(&dets, &gts, 3, 0.5) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn false_positives_lower_map() {
        let gts = vec![vec![GtBox {
            cx: 0.25,
            cy: 0.25,
            w: 0.2,
            h: 0.2,
            class: 0,
        }]];
        let dets = vec![vec![
            DetBox {
                cx: 0.8,
                cy: 0.8,
                w: 0.2,
                h: 0.2,
                class: 0,
                score: 0.95,
            }, // FP first
            DetBox {
                cx: 0.25,
                cy: 0.25,
                w: 0.2,
                h: 0.2,
                class: 0,
                score: 0.9,
            }, // TP second
        ]];
        let m = map_lite(&dets, &gts, 1, 0.5);
        assert!(m < 100.0 && m > 0.0, "mAP {m}");
    }

    #[test]
    fn decode_respects_confidence_threshold() {
        let c = cfg();
        // All-zero logits: sigmoid(0)=0.5 objectness.
        let pred = Tensor::zeros(vec![1, 8, 4, 4]);
        assert_eq!(decode_predictions(&pred, c, 0.6)[0].len(), 0);
        assert_eq!(decode_predictions(&pred, c, 0.4)[0].len(), 16);
    }

    #[test]
    fn training_reduces_yolo_loss() {
        let c = cfg();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut model = tiny_yolo(c, &mut rng);
        let mut s = Session::new(0);
        let mut opt = crate::optim::Sgd::new(0.01, 0.9, 0.0);
        use rand::Rng;
        let x = Tensor::from_vec(
            vec![2, 3, 16, 16],
            (0..2 * 3 * 256)
                .map(|_| rng.gen_range(0.0f32..1.0))
                .collect(),
        );
        let targets = vec![
            vec![GtBox {
                cx: 0.3,
                cy: 0.3,
                w: 0.25,
                h: 0.25,
                class: 0,
            }],
            vec![GtBox {
                cx: 0.7,
                cy: 0.6,
                w: 0.3,
                h: 0.2,
                class: 2,
            }],
        ];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let out = model.forward(&x, &mut s);
            let (loss, grad) = yolo_loss(&out, &targets, c);
            model.backward(&grad, &mut s);
            opt.step(&mut model);
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.7, "loss {first:?} -> {last}");
    }
}
