//! A small encoder-style transformer ("TinyTransformer") — the analogue of
//! the paper's 12-layer IWSLT14 transformer, trained on a synthetic
//! sequence-transduction task with token accuracy as the BLEU proxy.

use crate::act::Relu;
use crate::attention::MultiHeadSelfAttention;
use crate::embed::{Embedding, PositionalEmbedding};
use crate::linear::Dense;
use crate::model::{Residual, Sequential};
use crate::norm::LayerNorm;
use rand::Rng;

/// Configuration for [`tiny_transformer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size (shared input/output).
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub ff_dim: usize,
    /// Number of encoder blocks.
    pub layers: usize,
    /// Fixed sequence length.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// A small default: 2 blocks, d=32, 4 heads, seq 12.
    pub fn small(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 32,
            heads: 4,
            ff_dim: 64,
            layers: 2,
            seq_len: 12,
        }
    }
}

/// Builds an encoder transformer that maps `(batch, seq)` token-id tensors
/// to `(batch·seq, vocab)` logits (pre-LN blocks).
pub fn tiny_transformer(cfg: TransformerConfig, rng: &mut impl Rng) -> Sequential {
    let mut model = Sequential::new()
        .push(Embedding::new(cfg.vocab, cfg.d_model, rng))
        .push(PositionalEmbedding::new(cfg.seq_len, cfg.d_model, rng));
    for _ in 0..cfg.layers {
        // x + MHSA(LN(x))
        model.add(Box::new(Residual::new(
            Sequential::new()
                .push(LayerNorm::new(cfg.d_model))
                .push(MultiHeadSelfAttention::new(
                    cfg.d_model,
                    cfg.heads,
                    cfg.seq_len,
                    rng,
                )),
        )));
        // x + FF(LN(x))
        model.add(Box::new(Residual::new(
            Sequential::new()
                .push(LayerNorm::new(cfg.d_model))
                .push(Dense::new(cfg.d_model, cfg.ff_dim, true, rng))
                .push(Relu::new())
                .push(Dense::new(cfg.ff_dim, cfg.d_model, true, rng)),
        )));
    }
    model.add(Box::new(LayerNorm::new(cfg.d_model)));
    model.add(Box::new(Dense::new(cfg.d_model, cfg.vocab, true, rng)));
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{quant_layer_count, Layer, Session};
    use fast_tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn transformer_shape_flow() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = TransformerConfig {
            vocab: 11,
            seq_len: 6,
            ..TransformerConfig::small(11)
        };
        let mut m = tiny_transformer(cfg, &mut rng);
        let mut s = Session::new(0);
        let tokens = Tensor::from_vec(
            vec![2, 6],
            vec![1., 2., 3., 4., 5., 6., 6., 5., 4., 3., 2., 1.],
        );
        let y = m.forward(&tokens, &mut s);
        assert_eq!(y.shape(), &[12, 11]);
        // Per block: 4 attention projections + 2 FF denses; plus final dense.
        assert_eq!(quant_layer_count(&mut m), cfg.layers * 6 + 1);
    }

    #[test]
    fn transformer_backward_runs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = TransformerConfig {
            vocab: 7,
            d_model: 16,
            heads: 2,
            ff_dim: 32,
            layers: 1,
            seq_len: 4,
        };
        let mut m = tiny_transformer(cfg, &mut rng);
        let mut s = Session::new(0);
        let tokens = Tensor::from_vec(vec![1, 4], vec![0., 1., 2., 3.]);
        let y = m.forward(&tokens, &mut s);
        let _ = m.backward(&y, &mut s);
    }
}
