//! Loss functions returning `(loss, gradient)` pairs.

use fast_tensor::Tensor;

/// Softmax cross-entropy over `(rows, classes)` logits with integer labels.
///
/// Returns the mean loss and the gradient w.r.t. the logits (already
/// divided by the row count).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows or a label is
/// out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    assert_eq!(logits.rank(), 2, "logits must be (rows, classes)");
    let (rows, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), rows, "one label per row required");
    let mut grad = logits.clone();
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range for {classes} classes"
        );
        let row = &mut grad.data_mut()[i * classes..(i + 1) * classes];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
        loss -= (row[label].max(1e-12) as f64).ln();
        row[label] -= 1.0;
    }
    let inv = 1.0 / rows as f32;
    grad.scale(inv);
    (loss / rows as f64, grad)
}

/// Mean-squared-error loss `mean((pred - target)^2)` and its gradient.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.numel() as f64;
    let mut grad = pred.clone();
    let mut loss = 0.0f64;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += (d as f64) * (d as f64);
        *g = 2.0 * d / n as f32;
    }
    (loss / n, grad)
}

/// Numerically stable binary cross-entropy on a logit, with gradient.
pub fn bce_with_logit(logit: f32, target: f32) -> (f32, f32) {
    // loss = max(z,0) - z*t + ln(1 + e^-|z|)
    let z = logit;
    let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
    let sigmoid = 1.0 / (1.0 + (-z).exp());
    (loss, sigmoid - target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(vec![1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        assert!(grad.data()[0].abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::zeros(vec![2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, -1.0, 0.3, 0.9]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (up, _) = softmax_cross_entropy(&lp, &labels);
            let (um, _) = softmax_cross_entropy(&lm, &labels);
            let num = ((up - um) / (2.0 * eps as f64)) as f32;
            assert!((num - grad.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn mse_gradient_check() {
        let pred = Tensor::from_vec(vec![2, 2], vec![0.5, -1.0, 2.0, 0.0]);
        let target = Tensor::from_vec(vec![2, 2], vec![0.0, 1.0, 2.0, -1.0]);
        let (loss, grad) = mse_loss(&pred, &target);
        assert!((loss - (0.25 + 4.0 + 0.0 + 1.0) / 4.0).abs() < 1e-9);
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut pp = pred.clone();
            pp.data_mut()[idx] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[idx] -= eps;
            let (up, _) = mse_loss(&pp, &target);
            let (um, _) = mse_loss(&pm, &target);
            let num = ((up - um) / (2.0 * eps as f64)) as f32;
            assert!((num - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_gradient_check() {
        for (z, t) in [(0.5f32, 1.0f32), (-2.0, 0.0), (3.0, 0.0), (0.0, 0.5)] {
            let (_, g) = bce_with_logit(z, t);
            let eps = 1e-3;
            let (lp, _) = bce_with_logit(z + eps, t);
            let (lm, _) = bce_with_logit(z - eps, t);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g).abs() < 1e-3, "z={z} t={t}");
        }
    }
}
