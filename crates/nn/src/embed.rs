//! Token and positional embeddings for the transformer model.
//!
//! Token ids travel through the [`Layer`] interface as f32 values in a
//! `(batch, seq)` tensor; the embedding layer reads them as indices and
//! emits `(batch·seq, dim)` feature rows.

use crate::layer::{Layer, Param, Session};
use fast_tensor::{uniform_init, Tensor};
use rand::Rng;

/// Token embedding table `(vocab, dim)`.
#[derive(Debug)]
pub struct Embedding {
    table: Tensor,
    grad: Tensor,
    vocab: usize,
    dim: usize,
    saved_tokens: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding with uniform init in ±1/√dim.
    pub fn new(vocab: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let limit = (1.0 / dim as f32).sqrt();
        Embedding {
            table: uniform_init(vec![vocab, dim], limit, rng),
            grad: Tensor::zeros(vec![vocab, dim]),
            vocab,
            dim,
            saved_tokens: None,
        }
    }

    /// The embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2, "Embedding expects (batch, seq) token ids");
        let tokens: Vec<usize> = input
            .data()
            .iter()
            .map(|&v| {
                let t = v as usize;
                assert!(
                    v >= 0.0 && v.fract() == 0.0 && t < self.vocab,
                    "token id {v} outside vocab of {}",
                    self.vocab
                );
                t
            })
            .collect();
        let rows = tokens.len();
        let mut out = Tensor::zeros(vec![rows, self.dim]);
        for (i, &t) in tokens.iter().enumerate() {
            out.data_mut()[i * self.dim..(i + 1) * self.dim]
                .copy_from_slice(&self.table.data()[t * self.dim..(t + 1) * self.dim]);
        }
        if session.train {
            self.saved_tokens = Some(tokens);
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let tokens = self
            .saved_tokens
            .as_ref()
            .expect("Embedding::backward before forward");
        assert_eq!(grad_output.shape(), &[tokens.len(), self.dim]);
        for (i, &t) in tokens.iter().enumerate() {
            for j in 0..self.dim {
                self.grad.data_mut()[t * self.dim + j] += grad_output.data()[i * self.dim + j];
            }
        }
        // Tokens carry no gradient; return a zero tensor of the input shape.
        Tensor::zeros(vec![1, tokens.len()])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        f(Param {
            value: &mut self.table,
            grad: &mut self.grad,
            decay: false,
        });
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        v.tensor("table", &mut self.table);
    }

    fn kind(&self) -> &'static str {
        "embedding"
    }
}

/// Learned positional embedding added to `(batch·seq, dim)` rows.
#[derive(Debug)]
pub struct PositionalEmbedding {
    table: Tensor, // (seq_len, dim)
    grad: Tensor,
    seq_len: usize,
    dim: usize,
}

impl PositionalEmbedding {
    /// Creates a positional table for sequences of exactly `seq_len`.
    pub fn new(seq_len: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let limit = (1.0 / dim as f32).sqrt();
        PositionalEmbedding {
            table: uniform_init(vec![seq_len, dim], limit, rng),
            grad: Tensor::zeros(vec![seq_len, dim]),
            seq_len,
            dim,
        }
    }
}

impl Layer for PositionalEmbedding {
    fn forward(&mut self, input: &Tensor, _session: &mut Session) -> Tensor {
        assert_eq!(input.rank(), 2);
        assert_eq!(
            input.shape()[1],
            self.dim,
            "positional embedding width mismatch"
        );
        let rows = input.shape()[0];
        assert_eq!(rows % self.seq_len, 0, "rows must be a multiple of seq_len");
        let mut out = input.clone();
        for i in 0..rows {
            let p = i % self.seq_len;
            for j in 0..self.dim {
                out.data_mut()[i * self.dim + j] += self.table.data()[p * self.dim + j];
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor, _session: &mut Session) -> Tensor {
        let rows = grad_output.shape()[0];
        for i in 0..rows {
            let p = i % self.seq_len;
            for j in 0..self.dim {
                self.grad.data_mut()[p * self.dim + j] += grad_output.data()[i * self.dim + j];
            }
        }
        grad_output.clone()
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(Param<'_>)) {
        f(Param {
            value: &mut self.table,
            grad: &mut self.grad,
            decay: false,
        });
    }

    fn visit_state(&mut self, v: &mut dyn fast_ckpt::StateVisitor) {
        v.tensor("table", &mut self.table);
    }

    fn kind(&self) -> &'static str {
        "pos_embedding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn embedding_lookup_and_grad() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::from_vec(vec![1, 3], vec![2.0, 7.0, 2.0]);
        let y = emb.forward(&x, &mut s);
        assert_eq!(y.shape(), &[3, 4]);
        assert_eq!(&y.data()[0..4], &y.data()[8..12], "same token, same row");
        let g = Tensor::full(vec![3, 4], 1.0);
        let _ = emb.backward(&g, &mut s);
        // Token 2 appears twice: grad 2.0 per dim; token 7 once.
        assert_eq!(emb.grad.data()[2 * 4], 2.0);
        assert_eq!(emb.grad.data()[7 * 4], 1.0);
        assert_eq!(emb.grad.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "outside vocab")]
    fn out_of_vocab_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let mut s = Session::new(0);
        let _ = emb.forward(&Tensor::from_vec(vec![1, 1], vec![9.0]), &mut s);
    }

    #[test]
    fn positional_embedding_adds_per_position() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut pe = PositionalEmbedding::new(2, 3, &mut rng);
        let mut s = Session::new(0);
        let x = Tensor::zeros(vec![4, 3]); // batch 2, seq 2
        let y = pe.forward(&x, &mut s);
        assert_eq!(&y.data()[0..3], &pe.table.data()[0..3]);
        assert_eq!(&y.data()[3..6], &pe.table.data()[3..6]);
        assert_eq!(&y.data()[6..9], &pe.table.data()[0..3]);
    }
}
