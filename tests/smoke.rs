//! Workspace smoke test: every umbrella re-export of `fast_dnn` is reachable
//! and minimally functional. Complements `tests/integration.rs`, which
//! exercises deeper cross-crate behavior.

use fast_dnn::bfp::{BfpFormat, BfpGroup, Rounding};
use fast_dnn::data::GaussianClusters;
use fast_dnn::fast::{EpsilonSchedule, Setting};
use fast_dnn::hw::{BfpConverter, SystemConfig};
use fast_dnn::nn::{Dense, Layer, Session};
use fast_dnn::serve::{BatchConfig, CompiledModel, Server};
use fast_dnn::tensor::{matmul, Tensor};
use rand::SeedableRng;

#[test]
fn bfp_reexport_quantizes() {
    let fmt = BfpFormat::new(16, 4, 8).expect("valid format");
    let xs = vec![0.5f32; 16];
    let group = BfpGroup::quantize_nearest(&xs, fmt);
    assert_eq!(group.dequantize(), xs);
}

#[test]
fn tensor_reexport_multiplies() {
    let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
    let b = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
    assert_eq!(matmul(&a, &b).data(), a.data());
}

#[test]
fn nn_reexport_runs_a_layer() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut layer = Dense::new(3, 2, true, &mut rng);
    let x = Tensor::from_vec(vec![1, 3], vec![0.1, -0.2, 0.3]);
    let y = layer.forward(&x, &mut Session::eval(0));
    assert_eq!(y.shape(), &[1, 2]);
    assert!(y.data().iter().all(|v| v.is_finite()));
}

#[test]
fn data_reexport_generates() {
    let d = GaussianClusters::generate(2, 4, 8, 4, 0.5, 7);
    assert_eq!(d.dim(), 4);
}

#[test]
fn fast_reexport_schedules() {
    let sched = EpsilonSchedule::paper_default();
    let early = sched.epsilon(0, 8, 0, 100);
    let late = sched.epsilon(7, 8, 99, 100);
    assert!(early.is_finite() && late.is_finite());
    assert!(early >= late, "epsilon must not grow over training");
    assert_eq!(Setting::legend_order().len(), 8);
}

#[test]
fn hw_reexport_converts_and_configures() {
    let fmt = BfpFormat::new(16, 4, 8).expect("valid format");
    let mut conv = BfpConverter::new(fmt, 0xACE1);
    let out = conv.convert(&[1.0, -0.5, 0.25, 0.0], false);
    assert_eq!(out.group.len(), 4);
    assert!(SystemConfig::all().len() >= 2);
}

#[test]
fn serve_reexport_serves_a_request() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = fast_dnn::nn::Sequential::new().push(Dense::new(3, 2, true, &mut rng));
    let server = Server::start(
        vec![CompiledModel::compile(model, 0)],
        BatchConfig::default(),
    );
    let y = server.infer(Tensor::from_vec(vec![1, 3], vec![0.1, 0.2, 0.3]));
    assert_eq!(y.shape(), &[1, 2]);
    let stats = server.shutdown();
    assert_eq!(stats.samples, 1);
}

#[test]
fn ckpt_reexport_roundtrips_an_artifact() {
    use fast_dnn::ckpt::{Artifact, SECTION_META};
    let mut a = Artifact::new();
    a.insert(SECTION_META, vec![1, 2, 3]);
    let b = Artifact::from_bytes(&a.to_bytes()).expect("artifact round-trips");
    assert_eq!(b.section(SECTION_META), Some(&[1u8, 2, 3][..]));
}

#[test]
fn rounding_modes_are_distinct() {
    assert_ne!(
        format!("{:?}", Rounding::Nearest),
        format!("{:?}", Rounding::Truncate)
    );
}
