//! End-to-end seed determinism (DESIGN.md §5, §9, §10).
//!
//! A full multi-step training run — stochastic-rounded BFP quantization,
//! packed-operand GEMMs, SGD with momentum and weight decay — must be
//! bit-identical (a) across two runs from the same seed, (b) across GEMM
//! worker counts, including `Parallelism::sequential()` versus the default,
//! and (c) across a checkpoint/resume boundary: a run checkpointed at step
//! k through `fast_ckpt` artifact *bytes* and resumed into freshly
//! constructed objects must finish with the same loss curve and the same
//! parameter bits as the uninterrupted run.
//!
//! Everything lives in one `#[test]` because the worker count is process
//! global; splitting it across tests would race.

use fast_dnn::ckpt::Artifact;
use fast_dnn::nn::models::mlp;
use fast_dnn::nn::{
    set_uniform_precision, BatchNorm2d, Conv2d, Dense, Flatten, Layer, LayerPrecision, MaxPool2d,
    NoopHook, Relu, Sequential, Sgd, SrMode, Trainer,
};
use fast_dnn::tensor::{parallelism, set_parallelism, Parallelism, Tensor};
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-input batch.
fn batch(shape: Vec<usize>, salt: u64) -> Tensor {
    let n: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n)
            .map(|i| {
                ((i as u64).wrapping_mul(salt.wrapping_add(2654435761)) % 997) as f32 * 0.002 - 1.0
            })
            .collect(),
    )
}

/// One cross-entropy step on the deterministic pseudo-batch for `step`;
/// returns the loss bits. Shared by the uninterrupted and resumed runs so
/// both execute literally the same iteration code.
fn step_once(trainer: &mut Trainer, input_shape: &[usize], step: usize) -> u64 {
    let classes = 3usize;
    let x = batch(input_shape.to_vec(), step as u64 + 1);
    let labels: Vec<usize> = (0..input_shape[0]).map(|i| (i + step) % classes).collect();
    trainer
        .step_classification(&x, &labels, &mut NoopHook)
        .loss
        .to_bits()
}

fn collect_params(trainer: &mut Trainer) -> Vec<u32> {
    let mut params = Vec::new();
    trainer
        .model
        .visit_params(&mut |p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
    params
}

fn sgd() -> Sgd {
    Sgd::new(0.05, 0.9, 1e-4)
}

/// Trains `model` for `steps` cross-entropy steps; returns per-step losses
/// and the flattened final parameters.
fn train(mut model: Sequential, input_shape: Vec<usize>, steps: usize) -> (Vec<u64>, Vec<u32>) {
    // The paper's training setting: nearest-rounded W/A, stochastic-rounded
    // gradients — the stochastic bit stream is the interesting part.
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(model, sgd(), 42);
    let mut losses = Vec::new();
    for step in 0..steps {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let params = collect_params(&mut trainer);
    (losses, params)
}

/// Like [`train`], but the run is interrupted at `split`: checkpointed to
/// artifact *bytes*, the trainer dropped, and a resumed trainer — built
/// from a freshly constructed architecture with untouched default formats —
/// finishes the remaining steps. Everything (weights, SGD momenta, session
/// RNG mid-stream, per-layer precision, iteration count) must come from the
/// artifact for the result to match [`train`] bit for bit.
fn train_resumed(
    build: &dyn Fn() -> Sequential,
    input_shape: Vec<usize>,
    steps: usize,
    split: usize,
) -> (Vec<u64>, Vec<u32>) {
    let mut model = build();
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(model, sgd(), 42);
    let mut losses = Vec::new();
    for step in 0..split {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let bytes = trainer.checkpoint(None).to_bytes();
    drop(trainer);

    // Note: no `set_uniform_precision` here — the artifact restores the
    // per-layer formats along with the weights.
    let artifact = Artifact::from_bytes(&bytes).expect("checkpoint bytes decode");
    let mut trainer = Trainer::resume(build(), sgd(), &artifact, None).expect("checkpoint resumes");
    assert_eq!(trainer.iterations(), split, "iteration count restored");
    for step in split..steps {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let params = collect_params(&mut trainer);
    (losses, params)
}

/// Like [`train`], but with the SR noise source pinned explicitly
/// (DESIGN.md §12) rather than taken from the process default — so the
/// counter-vs-LFSR comparisons below mean the same thing on every CI leg.
fn train_mode(
    build: &dyn Fn() -> Sequential,
    input_shape: Vec<usize>,
    steps: usize,
    mode: SrMode,
) -> (Vec<u64>, Vec<u32>) {
    let mut model = build();
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(model, sgd(), 42);
    trainer.session.sr_mode = mode;
    let mut losses = Vec::new();
    for step in 0..steps {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let params = collect_params(&mut trainer);
    (losses, params)
}

/// Counter-mode analogue of [`train_resumed`]: the artifact's RNG section
/// is just `(sr_seed, sr_step)`, and resume self-selects counter mode from
/// the key names.
fn train_counter_resumed(
    build: &dyn Fn() -> Sequential,
    input_shape: Vec<usize>,
    steps: usize,
    split: usize,
) -> (Vec<u64>, Vec<u32>) {
    let mut model = build();
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(model, sgd(), 42);
    trainer.session.sr_mode = SrMode::Counter;
    let mut losses = Vec::new();
    for step in 0..split {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let bytes = trainer.checkpoint(None).to_bytes();
    drop(trainer);

    let artifact = Artifact::from_bytes(&bytes).expect("checkpoint bytes decode");
    let mut trainer = Trainer::resume(build(), sgd(), &artifact, None).expect("checkpoint resumes");
    assert_eq!(
        trainer.session.sr_mode,
        SrMode::Counter,
        "resume restores counter mode from the artifact's key names"
    );
    for step in split..steps {
        losses.push(step_once(&mut trainer, &input_shape, step));
    }
    let params = collect_params(&mut trainer);
    (losses, params)
}

fn mlp_model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    mlp(&[8, 24, 3], &mut rng)
}

fn mlp_run() -> (Vec<u64>, Vec<u32>) {
    train(mlp_model(), vec![6, 8], 6)
}

fn mlp_resumed_run() -> (Vec<u64>, Vec<u32>) {
    train_resumed(&mlp_model, vec![6, 8], 6, 3)
}

fn mlp_counter_run() -> (Vec<u64>, Vec<u32>) {
    train_mode(&mlp_model, vec![6, 8], 6, SrMode::Counter)
}

fn mlp_lfsr_run() -> (Vec<u64>, Vec<u32>) {
    train_mode(&mlp_model, vec![6, 8], 6, SrMode::Lfsr)
}

fn mlp_counter_resumed_run() -> (Vec<u64>, Vec<u32>) {
    train_counter_resumed(&mlp_model, vec![6, 8], 6, 3)
}

/// A ResNet-lite-style stem: conv → BN → ReLU → pool → conv → flatten →
/// dense, exercising Conv2d's forward/backward GEMMs and BatchNorm.
fn conv_model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    Sequential::new()
        .push(Conv2d::new(2, 6, 3, 1, 1, false, &mut rng))
        .push(BatchNorm2d::new(6))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Conv2d::new(6, 4, 3, 1, 1, true, &mut rng))
        .push(Flatten::new())
        .push(Dense::new(4 * 4 * 4, 3, true, &mut rng))
}

fn convnet_run() -> (Vec<u64>, Vec<u32>) {
    train(conv_model(), vec![4, 2, 8, 8], 4)
}

fn convnet_resumed_run() -> (Vec<u64>, Vec<u32>) {
    train_resumed(&conv_model, vec![4, 2, 8, 8], 4, 2)
}

/// A run that also exercises non-uniform random data paths.
fn noisy_mlp_run() -> (Vec<u64>, Vec<u32>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let model = mlp(&[5, 16, 3], &mut rng);
    let mut data_rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut model = model;
    set_uniform_precision(&mut model, LayerPrecision::bfp_fixed(2));
    let mut trainer = Trainer::new(model, Sgd::new(0.1, 0.0, 0.0), 9);
    let mut losses = Vec::new();
    for step in 0..5 {
        let x = Tensor::from_vec(
            vec![4, 5],
            (0..20).map(|_| data_rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let labels: Vec<usize> = (0..4).map(|i| (i + step) % 3).collect();
        losses.push(
            trainer
                .step_classification(&x, &labels, &mut NoopHook)
                .loss
                .to_bits(),
        );
    }
    let mut params = Vec::new();
    trainer
        .model
        .visit_params(&mut |p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
    (losses, params)
}

#[test]
fn training_is_bit_identical_across_runs_and_worker_counts() {
    let saved = parallelism();

    // (a) Same seed, same worker count → bit-identical runs.
    set_parallelism(Parallelism::sequential());
    let mlp_seq = mlp_run();
    assert_eq!(mlp_seq, mlp_run(), "MLP run must replay bit-identically");
    let conv_seq = convnet_run();
    assert_eq!(
        conv_seq,
        convnet_run(),
        "convnet run must replay bit-identically"
    );
    let noisy_seq = noisy_mlp_run();
    assert_eq!(noisy_seq, noisy_mlp_run());

    // (c) Checkpoint at step k + resume must be indistinguishable from the
    // uninterrupted run — same losses, same final parameter bits
    // (DESIGN.md §10; the SR bit stream continues mid-LFSR-period).
    assert_eq!(
        mlp_seq,
        mlp_resumed_run(),
        "MLP checkpoint/resume must be bit-identical to the uninterrupted run"
    );
    assert_eq!(
        conv_seq,
        convnet_resumed_run(),
        "convnet checkpoint/resume must be bit-identical to the uninterrupted run"
    );

    // (b) Worker count must not change a single result bit: sequential vs
    // small pools vs the machine default — including across the
    // checkpoint/resume boundary (a checkpoint written under one worker
    // count resumes identically under another via the CI sequential leg).
    for workers in [2usize, 3, 8] {
        set_parallelism(Parallelism::new(workers));
        assert_eq!(mlp_seq, mlp_run(), "MLP differs under {workers} workers");
        assert_eq!(
            conv_seq,
            convnet_run(),
            "convnet differs under {workers} workers"
        );
        assert_eq!(
            mlp_seq,
            mlp_resumed_run(),
            "resumed MLP differs under {workers} workers"
        );
    }
    set_parallelism(Parallelism::default());
    assert_eq!(mlp_seq, mlp_run(), "MLP differs under default workers");
    assert_eq!(
        conv_seq,
        convnet_run(),
        "convnet differs under default workers"
    );
    assert_eq!(noisy_seq, noisy_mlp_run());
    assert_eq!(
        conv_seq,
        convnet_resumed_run(),
        "resumed convnet differs under default workers"
    );

    // (d) Counter-mode SR (DESIGN.md §12): the order-free noise source must
    // give one bitwise trajectory across every worker count — here the SR
    // draws themselves are sharded across the pool, not just the GEMMs —
    // and across the checkpoint/resume boundary, where the RNG state on the
    // wire is just (sr_seed, sr_step).
    set_parallelism(Parallelism::sequential());
    let counter_seq = mlp_counter_run();
    assert_eq!(
        counter_seq,
        mlp_counter_run(),
        "counter-mode run must replay bit-identically"
    );
    assert_ne!(
        counter_seq,
        mlp_lfsr_run(),
        "counter mode draws a different (valid) noise stream than the LFSR"
    );
    assert_eq!(
        counter_seq,
        mlp_counter_resumed_run(),
        "counter-mode checkpoint/resume must be bit-identical"
    );
    for workers in [2usize, 3, 8] {
        set_parallelism(Parallelism::new(workers));
        assert_eq!(
            counter_seq,
            mlp_counter_run(),
            "counter-mode MLP differs under {workers} workers"
        );
        assert_eq!(
            counter_seq,
            mlp_counter_resumed_run(),
            "resumed counter-mode MLP differs under {workers} workers"
        );
    }
    set_parallelism(Parallelism::default());
    assert_eq!(
        counter_seq,
        mlp_counter_run(),
        "counter-mode MLP differs under default workers"
    );

    // (e) Telemetry neutrality (DESIGN.md §15): turning span collection on
    // must not change a single result bit. Instrumentation reads clocks and
    // values the computation already produced — never the SR noise stream
    // or tensor data — so losses and final parameter bits must match the
    // collection-off baselines above exactly. Collection is process-global,
    // which is why this leg lives in the same #[test].
    fast_dnn::telemetry::set_collection(true);
    set_parallelism(Parallelism::sequential());
    assert_eq!(
        mlp_seq,
        mlp_run(),
        "span collection must be bit-invisible to the MLP run"
    );
    assert_eq!(
        conv_seq,
        convnet_run(),
        "span collection must be bit-invisible to the convnet run"
    );
    assert_eq!(
        counter_seq,
        mlp_counter_run(),
        "span collection must be bit-invisible to counter-mode SR"
    );
    assert_eq!(
        mlp_seq,
        mlp_resumed_run(),
        "span collection must be bit-invisible across checkpoint/resume"
    );
    set_parallelism(Parallelism::default());
    assert_eq!(
        mlp_seq,
        mlp_run(),
        "span collection must be bit-invisible under default workers"
    );
    fast_dnn::telemetry::set_collection(false);

    set_parallelism(saved);
}
