//! The train→freeze→serve lifecycle conformance suite (DESIGN.md §13).
//!
//! Every model-zoo workload runs the full pipeline — FAST-Adaptive
//! training → checkpoint → bit-exact resume → frozen compile → batched
//! serving under concurrent submitters → mid-traffic hot reload
//! (continual-learning loop) — across the execution-mode × rounding-mode
//! matrix `{Replay, Integer} × {Lfsr, Counter}`. The invariants (bit-exact
//! resume, compiled≡eval parity, zero dropped requests, bit-transparent
//! reloads) are asserted inside `fast_harness::run_lifecycle`; each test
//! here is one workload's sweep over the four cells.
//!
//! The configs are the harness's CI-scale `quick` settings, so this file
//! doubles as the `lifecycle-smoke` CI job (run there under both the
//! default worker pool and `FAST_TENSOR_WORKERS=1`; the cells pin their
//! exec/SR modes explicitly, so the suite is also immune to the
//! `FAST_QGEMM_MODE` / `FAST_SR_MODE` env legs).

use fast_dnn::bfp::SrMode;
use fast_dnn::harness::{run_lifecycle, LifecycleConfig, Workload};
use fast_dnn::nn::ExecMode;

/// The `{Replay, Integer} × {Lfsr, Counter}` matrix.
const CELLS: [(ExecMode, SrMode); 4] = [
    (ExecMode::Replay, SrMode::Lfsr),
    (ExecMode::Replay, SrMode::Counter),
    (ExecMode::Integer, SrMode::Lfsr),
    (ExecMode::Integer, SrMode::Counter),
];

fn sweep(workload: Workload) {
    for (exec_mode, sr_mode) in CELLS {
        let report = run_lifecycle(workload, &LifecycleConfig::quick(exec_mode, sr_mode));
        // The invariants are asserted inside the driver; re-check the
        // report's shape so a silently-degenerate run cannot pass.
        assert!(
            report.losses.len() >= 8,
            "{}: training must actually run: {:?}",
            report.cell,
            report.losses
        );
        assert_eq!(report.generation, 2, "{}: two reload rounds", report.cell);
        assert!(
            report.served >= 36,
            "{}: served {}",
            report.cell,
            report.served
        );
        assert_eq!(report.reloads, 4, "{}: 2 replicas × 2 rounds", report.cell);
    }
}

#[test]
fn mlp_survives_the_full_lifecycle_matrix() {
    sweep(Workload::Mlp);
}

/// Telemetry neutrality (DESIGN.md §15): the full lifecycle — training
/// losses, resume parity, compiled≡eval serving parity, reload
/// transparency — must be bit-identical whether span collection is on or
/// off. The serving-parity and resume invariants are asserted *inside*
/// `run_lifecycle` (so the collector-on leg re-proves served outputs match
/// eval forwards bit for bit); the loss curves of the two legs are
/// compared here bit for bit on top.
#[test]
fn lifecycle_is_bit_identical_with_collector_installed() {
    let cfg = LifecycleConfig::quick(ExecMode::Replay, SrMode::Counter);
    let off = run_lifecycle(Workload::Mlp, &cfg);
    fast_dnn::telemetry::set_collection(true);
    let on = run_lifecycle(Workload::Mlp, &cfg);
    fast_dnn::telemetry::set_collection(false);
    let bits = |r: &fast_dnn::harness::LifecycleReport| -> Vec<u64> {
        r.losses.iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(
        bits(&off),
        bits(&on),
        "span collection must not change a single loss bit across the lifecycle"
    );
    assert_eq!(off.served, on.served);
    assert_eq!(off.reloads, on.reloads);
}

#[test]
fn resnet_lite_survives_the_full_lifecycle_matrix() {
    sweep(Workload::ResNetLite);
}

#[test]
fn mobilenet_lite_survives_the_full_lifecycle_matrix() {
    sweep(Workload::MobileNetLite);
}

#[test]
fn vgg_lite_survives_the_full_lifecycle_matrix() {
    sweep(Workload::VggLite);
}

#[test]
fn transformer_lite_survives_the_full_lifecycle_matrix() {
    sweep(Workload::TransformerLite);
}

#[test]
fn yolo_lite_survives_the_full_lifecycle_matrix() {
    sweep(Workload::YoloLite);
}
