//! Checkpoint artifact integration tests (DESIGN.md §10).
//!
//! * Round-trip property: for every format in the 10-format zoo (the same
//!   zoo the quantized-GEMM plan is pinned over), a run checkpointed to
//!   artifact bytes and resumed — parameters, per-layer formats, session
//!   RNG mid-stream, and optimizer state all from the artifact — continues
//!   bit-identically to the uninterrupted run.
//! * The FAST controller resumes as part of the artifact's `hook` section:
//!   precision decisions and the Fig 17 trace continue seamlessly.
//! * A trained artifact saved to disk hot-reloads into a running server.
//! * Malformed artifacts surface typed errors end to end, never panics.

use fast_dnn::bfp::{BfpFormat, Rounding, SrMode};
use fast_dnn::ckpt::{Artifact, CkptError};
use fast_dnn::fast::{EpsilonSchedule, FastController};
use fast_dnn::nn::models::mlp;
use fast_dnn::nn::{
    set_uniform_precision, Dense, Layer, LayerPrecision, NoopHook, NumericFormat, Relu, Sequential,
    Sgd, Trainer,
};
use fast_dnn::serve::{BatchConfig, CompiledModel, Server};
use fast_dnn::tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

/// The format zoo of `crates/nn/tests/proptests.rs`: FP32 borrow-through,
/// scalar formats, packable BFP across rounding modes/windows, and
/// wide-mantissa BFP fallbacks.
fn zoo_format(idx: usize) -> NumericFormat {
    match idx % 10 {
        0 => NumericFormat::Fp32,
        1 => NumericFormat::bf16(),
        2 => NumericFormat::int8(),
        3 => NumericFormat::bfp_nearest(BfpFormat::low()),
        4 => NumericFormat::bfp_nearest(BfpFormat::high()),
        5 => NumericFormat::bfp_stochastic(BfpFormat::high()),
        6 => NumericFormat::Bfp {
            format: BfpFormat::new(16, 3, 3).unwrap(),
            rounding: Rounding::Stochastic { noise_bits: 5 },
            windowed: true,
        },
        7 => NumericFormat::Bfp {
            format: BfpFormat::new(8, 7, 8).unwrap(),
            rounding: Rounding::Truncate,
            windowed: false,
        },
        8 => NumericFormat::bfp_nearest(BfpFormat::new(16, 12, 8).unwrap()),
        _ => NumericFormat::Bfp {
            format: BfpFormat::msfp12(),
            rounding: Rounding::Nearest,
            windowed: true,
        },
    }
}

fn model(seed: u64) -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Sequential::new()
        .push(Dense::new(6, 16, true, &mut rng))
        .push(Relu::new())
        .push(Dense::new(16, 3, true, &mut rng))
}

fn batch(step: usize, salt: u64) -> (Tensor, Vec<usize>) {
    let x = Tensor::from_vec(
        vec![4, 6],
        (0..24)
            .map(|i| {
                let h = (i as u64 + 31 * step as u64).wrapping_mul(salt.wrapping_add(0x9E37_79B9))
                    % 1009;
                h as f32 * 0.0015 - 0.75
            })
            .collect(),
    );
    let labels = (0..4).map(|i| (i + step) % 3).collect();
    (x, labels)
}

fn step(trainer: &mut Trainer, step_idx: usize, salt: u64) -> u64 {
    let (x, labels) = batch(step_idx, salt);
    trainer
        .step_classification(&x, &labels, &mut NoopHook)
        .loss
        .to_bits()
}

fn final_bits(trainer: &mut Trainer) -> Vec<u32> {
    let mut params = Vec::new();
    trainer
        .model
        .visit_params(&mut |p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Checkpoint/resume is bit-exact across the whole zoo: W/A/G formats
    /// drawn independently (so SR formats land on every operand class),
    /// arbitrary split points, arbitrary seeds.
    #[test]
    fn zoo_roundtrip_resume_is_bit_exact(
        w_idx in 0usize..10,
        a_idx in 0usize..10,
        g_idx in 0usize..10,
        seed in 0u64..1000,
        split in 1usize..4,
    ) {
        let precision = LayerPrecision {
            weights: zoo_format(w_idx),
            activations: zoo_format(a_idx),
            gradients: zoo_format(g_idx),
        };
        let steps = split + 2;

        // Uninterrupted reference.
        let mut m = model(seed);
        set_uniform_precision(&mut m, precision);
        let mut straight = Trainer::new(m, Sgd::new(0.05, 0.9, 1e-4), seed ^ 0xC0FFEE);
        let mut want_losses = Vec::new();
        for s in 0..steps {
            want_losses.push(step(&mut straight, s, seed));
        }
        let want_params = final_bits(&mut straight);

        // Interrupted twin: checkpoint at `split`, resume into a fresh
        // architecture (default formats — the artifact restores them).
        let mut m = model(seed);
        set_uniform_precision(&mut m, precision);
        let mut first = Trainer::new(m, Sgd::new(0.05, 0.9, 1e-4), seed ^ 0xC0FFEE);
        let mut got_losses = Vec::new();
        for s in 0..split {
            got_losses.push(step(&mut first, s, seed));
        }
        let bytes = first.checkpoint(None).to_bytes();
        drop(first);
        let artifact = Artifact::from_bytes(&bytes).expect("bytes decode");
        let mut resumed = Trainer::resume(model(seed), Sgd::new(0.05, 0.9, 1e-4), &artifact, None)
            .expect("artifact resumes");
        for s in split..steps {
            got_losses.push(step(&mut resumed, s, seed));
        }
        prop_assert_eq!(got_losses, want_losses);
        prop_assert_eq!(final_bits(&mut resumed), want_params);
    }
}

#[test]
fn controller_run_resumes_bit_identically_with_hook_state() {
    let steps = 8usize;
    let split = 4usize;
    let build_ctl = || FastController::new(steps, EpsilonSchedule::paper_default()).with_stride(2);

    // Uninterrupted run under the controller (sensitivity caches on).
    let run = |interrupt: bool| -> (Vec<u64>, Vec<u32>, String) {
        let mut ctl = build_ctl();
        let mut trainer = Trainer::new(mlp_model(), Sgd::new(0.05, 0.9, 0.0), 7);
        let mut losses = Vec::new();
        let run_steps = |trainer: &mut Trainer,
                         ctl: &mut FastController,
                         range: std::ops::Range<usize>,
                         losses: &mut Vec<u64>| {
            for s in range {
                let (x, labels) = batch(s, 99);
                losses.push(trainer.step_classification(&x, &labels, ctl).loss.to_bits());
            }
        };
        if interrupt {
            run_steps(&mut trainer, &mut ctl, 0..split, &mut losses);
            let bytes = trainer.checkpoint(Some(&mut ctl)).to_bytes();
            drop(trainer);
            drop(ctl);
            let artifact = Artifact::from_bytes(&bytes).unwrap();
            let mut ctl2 = build_ctl();
            let mut trainer2 = Trainer::resume(
                mlp_model(),
                Sgd::new(0.05, 0.9, 0.0),
                &artifact,
                Some(&mut ctl2),
            )
            .expect("controller run resumes");
            run_steps(&mut trainer2, &mut ctl2, split..steps, &mut losses);
            let mut params = Vec::new();
            trainer2
                .model
                .visit_params(&mut |p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
            (losses, params, ctl2.trace.render_ascii(4))
        } else {
            run_steps(&mut trainer, &mut ctl, 0..steps, &mut losses);
            let mut params = Vec::new();
            trainer
                .model
                .visit_params(&mut |p| params.extend(p.value.data().iter().map(|v| v.to_bits())));
            (losses, params, ctl.trace.render_ascii(4))
        }
    };

    let straight = run(false);
    let resumed = run(true);
    assert_eq!(resumed.0, straight.0, "controller-run losses must match");
    assert_eq!(resumed.1, straight.1, "controller-run weights must match");
    assert_eq!(
        resumed.2, straight.2,
        "the resumed Fig 17 trace must continue the pre-checkpoint history"
    );
}

fn mlp_model() -> Sequential {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    mlp(&[6, 12, 3], &mut rng)
}

#[test]
fn trained_artifact_hot_reloads_into_a_running_server() {
    // Train a model, checkpoint it to disk — the artifact a training fleet
    // hands to the serving fleet.
    let dir = std::env::temp_dir().join("fast_ckpt_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trained.fastckpt");
    let mut m = model(42);
    set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
    let mut trainer = Trainer::new(m, Sgd::new(0.05, 0.9, 0.0), 5);
    for s in 0..4 {
        let _ = step(&mut trainer, s, 17);
    }
    trainer.save_checkpoint(&path, None).unwrap();

    // Reference: what the trained model should serve.
    let trained = Trainer::resume(
        model(42),
        Sgd::new(0.05, 0.9, 0.0),
        &Artifact::load(&path).unwrap(),
        None,
    )
    .unwrap();
    let mut reference = CompiledModel::compile(trained.model, 0);
    let x = Tensor::from_vec(vec![1, 6], (0..6).map(|i| 0.1 * i as f32 - 0.2).collect());
    let want = reference.infer(&x);

    // A server of *untrained* replicas picks the weights up via reload.
    let replicas = (0..2)
        .map(|_| {
            let mut m = model(42);
            set_uniform_precision(&mut m, LayerPrecision::bfp_fixed(4));
            CompiledModel::compile(m, 0)
        })
        .collect();
    let server = Server::start(replicas, BatchConfig::no_wait(4));
    let before = server.infer(x.clone());
    assert_ne!(before, want, "untrained replicas serve different outputs");
    server.reload(&Artifact::load(&path).unwrap()).unwrap();
    assert_eq!(
        server.infer(x),
        want,
        "post-reload serving must be bit-transparent to the trained model"
    );
    let stats = server.shutdown();
    assert_eq!(stats.reload_failures, 0);
    assert_eq!(stats.reloads, 2);
    std::fs::remove_file(&path).unwrap();
}

/// Counter-mode checkpoints shrink the session RNG section to exactly
/// `(sr_seed, sr_step)` — no `rng0..rng3` words — and the artifact
/// self-describes its SR mode: resume restores `SrMode::Counter` into a
/// fresh trainer (whatever its environment default) and the run continues
/// bit-identically to the uninterrupted counter-mode run.
#[test]
fn counter_sr_checkpoint_carries_seed_step_and_resumes_bit_exactly() {
    use fast_dnn::ckpt::{StateDict, SECTION_SESSION};
    let precision = LayerPrecision {
        weights: zoo_format(5),     // SR HighBFP
        activations: zoo_format(6), // SR windowed, 5 noise bits
        gradients: zoo_format(5),
    };
    let (steps, split) = (5usize, 2usize);
    let seed = 77u64;

    let make = || {
        let mut m = model(seed);
        set_uniform_precision(&mut m, precision);
        let mut t = Trainer::new(m, Sgd::new(0.05, 0.9, 1e-4), seed);
        t.session.sr_mode = SrMode::Counter;
        t
    };

    // Uninterrupted counter-mode reference.
    let mut straight = make();
    let mut want_losses = Vec::new();
    for s in 0..steps {
        want_losses.push(step(&mut straight, s, seed));
    }
    let want_params = final_bits(&mut straight);

    // Interrupted twin.
    let mut first = make();
    let mut got_losses = Vec::new();
    for s in 0..split {
        got_losses.push(step(&mut first, s, seed));
    }
    let bytes = first.checkpoint(None).to_bytes();
    drop(first);
    let artifact = Artifact::from_bytes(&bytes).expect("bytes decode");

    // The wire shape: counter mode serializes (seed, step) and nothing of
    // the four-word LFSR state.
    let session = StateDict::from_bytes(artifact.require(SECTION_SESSION).unwrap()).unwrap();
    assert!(session.get("sr_seed").is_some(), "sr_seed on the wire");
    assert!(session.get("sr_step").is_some(), "sr_step on the wire");
    for key in ["rng0", "rng1", "rng2", "rng3"] {
        assert!(
            session.get(key).is_none(),
            "counter-mode artifact must not carry LFSR word {key}"
        );
    }

    // Resume into a fresh trainer built with the *default* mode: the
    // artifact's key names select counter mode, not the environment.
    let mut m = model(seed);
    set_uniform_precision(&mut m, precision);
    let mut resumed = Trainer::resume(m, Sgd::new(0.05, 0.9, 1e-4), &artifact, None)
        .expect("counter artifact resumes");
    assert_eq!(resumed.session.sr_mode, SrMode::Counter);
    for s in split..steps {
        got_losses.push(step(&mut resumed, s, seed));
    }
    assert_eq!(got_losses, want_losses);
    assert_eq!(final_bits(&mut resumed), want_params);
}

/// Pre-counter artifacts — the four `rng0..rng3` LFSR words — keep
/// restoring exactly as before: resume lands on `SrMode::Lfsr` even when
/// the process default (e.g. the `FAST_SR_MODE=counter` CI leg) is counter.
#[test]
fn lfsr_artifact_restores_lfsr_mode_regardless_of_default() {
    use fast_dnn::ckpt::{StateDict, SECTION_SESSION};
    let precision = LayerPrecision {
        weights: zoo_format(5),
        activations: zoo_format(6),
        gradients: zoo_format(5),
    };
    let (steps, split) = (4usize, 2usize);

    let make = || {
        let mut m = model(9);
        set_uniform_precision(&mut m, precision);
        let mut t = Trainer::new(m, Sgd::new(0.05, 0.9, 1e-4), 9);
        t.session.sr_mode = SrMode::Lfsr;
        t
    };

    let mut straight = make();
    let mut want_losses = Vec::new();
    for s in 0..steps {
        want_losses.push(step(&mut straight, s, 9));
    }
    let want_params = final_bits(&mut straight);

    let mut first = make();
    let mut got_losses = Vec::new();
    for s in 0..split {
        got_losses.push(step(&mut first, s, 9));
    }
    let artifact = Artifact::from_bytes(&first.checkpoint(None).to_bytes()).unwrap();
    drop(first);

    let session = StateDict::from_bytes(artifact.require(SECTION_SESSION).unwrap()).unwrap();
    assert!(session.get("rng0").is_some(), "LFSR words on the wire");
    assert!(
        session.get("sr_seed").is_none(),
        "no counter keys in LFSR mode"
    );

    let mut m = model(9);
    set_uniform_precision(&mut m, precision);
    let mut resumed =
        Trainer::resume(m, Sgd::new(0.05, 0.9, 1e-4), &artifact, None).expect("resumes");
    assert_eq!(
        resumed.session.sr_mode,
        SrMode::Lfsr,
        "artifact key names, not the process default, select the SR mode"
    );
    for s in split..steps {
        got_losses.push(step(&mut resumed, s, 9));
    }
    assert_eq!(got_losses, want_losses);
    assert_eq!(final_bits(&mut resumed), want_params);
}

#[test]
fn malformed_artifacts_fail_resume_with_typed_errors() {
    let mut trainer = Trainer::new(model(1), Sgd::new(0.1, 0.0, 0.0), 0);
    // The all-zero-RNG corruption below targets the LFSR wire layout, so
    // pin the mode against the FAST_SR_MODE=counter CI leg.
    trainer.session.sr_mode = SrMode::Lfsr;
    let _ = step(&mut trainer, 0, 1);
    let good = trainer.checkpoint(None).to_bytes();

    // Truncated file.
    let err = Artifact::from_bytes(&good[..good.len() / 2]).unwrap_err();
    assert!(
        matches!(
            err,
            CkptError::Truncated { .. } | CkptError::ChecksumMismatch { .. }
        ),
        "{err}"
    );
    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'Z';
    assert!(matches!(
        Artifact::from_bytes(&bad).unwrap_err(),
        CkptError::BadMagic { .. }
    ));
    // Wrong version.
    let mut bad = good.clone();
    bad[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        Artifact::from_bytes(&bad).unwrap_err(),
        CkptError::UnsupportedVersion { found: 2 }
    ));
    // Checksum mismatch: flip a payload byte near the end.
    let mut bad = good.clone();
    let n = bad.len();
    bad[n - 1] ^= 0x40;
    assert!(matches!(
        Artifact::from_bytes(&bad).unwrap_err(),
        CkptError::ChecksumMismatch { .. }
    ));

    // All-zero RNG words: structurally valid, semantically corrupt (no live
    // generator reaches that state) — a typed error, not a panic.
    use fast_dnn::ckpt::{StateDict, StateValue, SECTION_SESSION};
    let artifact = Artifact::from_bytes(&good).unwrap();
    let mut session = StateDict::from_bytes(artifact.require(SECTION_SESSION).unwrap()).unwrap();
    for key in ["rng0", "rng1", "rng2", "rng3"] {
        session.insert(key.to_string(), StateValue::U64(0));
    }
    let mut zeroed = artifact.clone();
    zeroed.insert(SECTION_SESSION, session.to_bytes());
    let err = Trainer::resume(model(1), Sgd::new(0.1, 0.0, 0.0), &zeroed, None).unwrap_err();
    assert!(matches!(err, CkptError::Corrupt { .. }), "{err}");

    // Architecture mismatch: a valid artifact restored into the wrong model
    // is a typed error, and resume hands back no trainer.
    let artifact = Artifact::from_bytes(&good).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let wrong = Sequential::new().push(Dense::new(2, 2, true, &mut rng));
    let err = Trainer::resume(wrong, Sgd::new(0.1, 0.0, 0.0), &artifact, None).unwrap_err();
    assert!(
        matches!(
            err,
            CkptError::MissingEntry { .. }
                | CkptError::ShapeMismatch { .. }
                | CkptError::UnconsumedEntries { .. }
        ),
        "{err}"
    );

    // Resuming with a hook when the artifact has none is a missing section.
    let mut ctl = FastController::new(4, EpsilonSchedule::paper_default());
    let err =
        Trainer::resume(model(1), Sgd::new(0.1, 0.0, 0.0), &artifact, Some(&mut ctl)).unwrap_err();
    assert!(matches!(err, CkptError::MissingSection { section } if section == "hook"));
}
