//! Cross-crate integration tests: the full FAST pipeline from BFP numerics
//! through quantized training to the hardware cost model.

use fast_dnn::bfp::{relative_improvement, BfpFormat, BfpGroup};
use fast_dnn::data::{GaussianClusters, SyntheticImages};
use fast_dnn::fast::{
    CostMeter, DimScale, EpsilonSchedule, FastController, LayerwisePolicy, Setting, TemporalPolicy,
};
use fast_dnn::hw::{BfpConverter, SystemConfig};
use fast_dnn::nn::models::{mlp, resnet_lite, ResNetConfig};
use fast_dnn::nn::{
    quant_layer_count, set_uniform_precision, Layer, LayerPrecision, NoopHook, Session, Sgd,
    TrainHook, Trainer,
};
use fast_dnn::tensor::Tensor;
use rand::SeedableRng;

/// Train a small MLP on separable clusters under several formats; every
/// reasonable format must solve the task, and HighBFP must track FP32.
#[test]
fn quantized_training_solves_separable_task() {
    let data = GaussianClusters::generate(3, 8, 192, 96, 0.6, 5);
    for (name, precision) in [
        ("fp32", LayerPrecision::fp32()),
        ("bf16", LayerPrecision::bf16()),
        ("nvidia_mp", LayerPrecision::nvidia_mp()),
        ("hfp8", LayerPrecision::hfp8()),
        ("high_bfp", LayerPrecision::bfp_fixed(4)),
        ("int12", LayerPrecision::int12()),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut model = mlp(&[8, 32, 3], &mut rng);
        set_uniform_precision(&mut model, precision);
        let mut trainer = Trainer::new(model, Sgd::new(0.05, 0.9, 0.0), 0);
        for epoch in 0..12 {
            for (x, y) in data.train_batches(32, epoch) {
                trainer.step_classification(&x, &y, &mut NoopHook);
            }
        }
        let acc = trainer.evaluate_classification(&data.test_batches(96));
        assert!(acc > 90.0, "{name}: accuracy {acc}");
    }
}

/// The end-to-end FAST loop: controller + meter + CNN. Precision must grow
/// over training and the meter must charge fewer cycles than an all-m=4 run.
#[test]
fn fast_adaptive_end_to_end_on_cnn() {
    let classes = 4;
    let data = SyntheticImages::generate(classes, 16, 96, 48, 9);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = resnet_lite(ResNetConfig::resnet18(4, classes), &mut rng);
    let mut trainer = Trainer::new(model, Sgd::new(0.05, 0.9, 1e-4), 0);
    let iters = 4 * 3; // 4 epochs × 3 batches
    let mut ctl = FastController::new(iters, EpsilonSchedule::paper_default());
    let mut meter = CostMeter::new(SystemConfig::fast()).with_dim_scale(DimScale::CNN_PAPER);
    for epoch in 0..4 {
        for (x, y) in data.train_batches(32, epoch) {
            ctl.before_iteration(trainer.iterations(), &mut trainer.model);
            trainer.step_classification(&x, &y, &mut NoopHook);
            meter.record(&mut trainer.model);
        }
    }
    assert_eq!(meter.cumulative_cycles.len(), iters);
    assert!(meter.total_cycles > 0);

    // Compare against an all-high-precision run of the same shapes.
    set_uniform_precision(&mut trainer.model, LayerPrecision::fast(4, 4, 4));
    let mut high_meter = CostMeter::new(SystemConfig::fast()).with_dim_scale(DimScale::CNN_PAPER);
    let high = high_meter.record(&mut trainer.model);
    let adaptive_mean = meter.total_cycles / iters as u64;
    assert!(
        adaptive_mean < high.cycles,
        "adaptive mean {adaptive_mean} should undercut all-m=4 {}",
        high.cycles
    );

    // The trace grows in precision over time for at least the early layers.
    let max_iter = iters;
    let early: f64 = (0..3)
        .map(|l| ctl.trace.mean_legend_index(l, 0, max_iter / 2))
        .sum();
    let late: f64 = (0..3)
        .map(|l| ctl.trace.mean_legend_index(l, max_iter / 2, max_iter))
        .sum();
    assert!(
        late >= early,
        "precision should grow: early {early}, late {late}"
    );
}

/// Static schedules apply the formats they promise, layer by layer.
#[test]
fn schedules_apply_expected_precisions() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut model = mlp(&[8, 16, 16, 4], &mut rng);
    let n = quant_layer_count(&mut model);
    assert_eq!(n, 3);

    let mut temporal = TemporalPolicy::low_to_high(100);
    temporal.before_iteration(0, &mut model);
    let mut bfp_layers = 0;
    model.visit_quant(&mut |q| {
        if matches!(
            q.precision().weights,
            fast_dnn::nn::NumericFormat::Bfp { .. }
        ) {
            bfp_layers += 1;
        }
    });
    assert_eq!(bfp_layers, 3, "all layers BFP in the low phase");

    let mut layerwise = LayerwisePolicy::high_to_low();
    layerwise.before_iteration(0, &mut model);
    let mut kinds = Vec::new();
    model.visit_quant(&mut |q| {
        kinds.push(matches!(
            q.precision().weights,
            fast_dnn::nn::NumericFormat::Fp32
        ));
    });
    assert_eq!(
        kinds,
        vec![true, true, false],
        "first half FP32, second half BFP"
    );
}

/// The hardware converter and the software quantizer agree on tensors that
/// actually flow through training (weights of a trained layer).
#[test]
fn hw_converter_agrees_with_training_tensors() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut model = mlp(&[6, 24, 2], &mut rng);
    let mut session = Session::new(0);
    let mut opt = Sgd::new(0.1, 0.9, 0.0);
    let x = Tensor::from_vec(
        vec![8, 6],
        (0..48).map(|i| ((i as f32) * 0.21).sin()).collect(),
    );
    let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
    for _ in 0..20 {
        let out = model.forward(&x, &mut session);
        let (_, grad) = fast_dnn::nn::softmax_cross_entropy(&out, &labels);
        model.backward(&grad, &mut session);
        opt.step(&mut model);
    }
    let fmt = BfpFormat::high();
    let mut conv = BfpConverter::new(fmt, 0x1234);
    model.visit_quant(&mut |q| {
        let w = q.weight();
        for group in w.data().chunks(16) {
            let hw = conv.convert(group, false).group;
            let sw = BfpGroup::quantize_nearest(group, fmt);
            assert_eq!(hw, sw, "converter/reference mismatch on trained weights");
        }
    });
}

/// r(X) of trained weights is meaningful: small for coarse tensors, larger
/// for tensors with fine structure, and always within the decision range
/// the epsilon schedule sweeps.
#[test]
fn improvement_statistic_in_decision_range() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut model = mlp(&[16, 64, 4], &mut rng);
    let mut r_values = Vec::new();
    model.visit_quant(&mut |q| {
        r_values.push(relative_improvement(q.weight().data(), 16));
    });
    for r in &r_values {
        assert!(r.is_finite() && *r >= 0.0 && *r < 1.0, "r = {r}");
    }
    // The paper's ε sweeps 0.6 down to 0.0: initialized Kaiming weights
    // should produce r in a range the schedule can actually discriminate.
    let schedule = EpsilonSchedule::paper_default();
    let eps_start = schedule.epsilon(0, 10, 0, 100);
    assert!(
        r_values.iter().any(|&r| r < eps_start),
        "some tensor starts low-precision"
    );
}

/// Settings order matches the hardware cost model at the tier level.
#[test]
fn setting_costs_align_with_legend() {
    let order = Setting::legend_order();
    assert_eq!(order[0], Setting { w: 2, a: 2, g: 2 });
    assert_eq!(order[7], Setting { w: 4, a: 4, g: 4 });
    let costs: Vec<f64> = order.iter().map(Setting::cost).collect();
    for w in costs.windows(2) {
        assert!(w[0] < w[1]);
    }
}

/// Eval mode must not disturb training state (BN running stats are used,
/// caches untouched).
#[test]
fn eval_does_not_corrupt_training() {
    let classes = 3;
    let data = SyntheticImages::generate(classes, 16, 64, 32, 13);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let model = resnet_lite(ResNetConfig::resnet18(4, classes), &mut rng);
    let mut trainer = Trainer::new(model, Sgd::new(0.05, 0.9, 0.0), 0);
    let mut losses = Vec::new();
    for epoch in 0..3 {
        for (x, y) in data.train_batches(32, epoch) {
            losses.push(trainer.step_classification(&x, &y, &mut NoopHook).loss);
            // Interleave an eval after every step.
            let _ = trainer.evaluate_classification(&data.test_batches(32));
        }
    }
    let first = losses.first().copied().unwrap_or(0.0);
    let last = losses.last().copied().unwrap_or(f64::MAX);
    assert!(
        last < first,
        "loss should still fall with interleaved evals: {first} -> {last}"
    );
}
