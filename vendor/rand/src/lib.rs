//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no registry access, so this crate stands in for
//! crates.io `rand`. It implements exactly the surface the workspace calls:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] (with `gen_range` and
//!   `gen_bool`),
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64, so `seed_from_u64` sequences are reproducible across runs
//!   and platforms,
//! * [`seq::SliceRandom::shuffle`] — a Fisher–Yates shuffle.
//!
//! Swap this for the real `rand = "0.8"` in `[workspace.dependencies]` once
//! crates.io is reachable; no call sites need to change.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range-like arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = (lo as f64 + unit * (hi as f64 - lo as f64)) as $t;
                let v = if v < lo { lo } else { v };
                // Narrowing back to the target type can round up to exactly
                // `hi`; keep half-open ranges half-open.
                if !inclusive && v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    ///
    /// Not cryptographically secure — statistical quality only, which is all
    /// the workspace needs (initializers, synthetic data, stochastic
    /// rounding experiments).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit generator state, for exact checkpoint/resume.
        ///
        /// Shim extension (crates.io `rand` has no equivalent): `fast_ckpt`
        /// snapshots generators so resumed runs replay the same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot, resuming
        /// the stream at exactly the point the snapshot was taken.
        ///
        /// Shim extension, paired with [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256** never reaches
        /// from seeding and cannot leave (a corrupt snapshot, not a state).
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256** state is invalid"
            );
            StdRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
                Self::splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place using `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn state_snapshot_resumes_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snap = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snap);
        let replay: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range(0..10);
            assert!((0..10).contains(&n));
            let m = rng.gen_range(0..=4usize);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_half_open_at_the_top() {
        // An all-ones bit source drives `unit` to just below 1.0, where the
        // f64 → f32 narrowing would round the sample up to exactly `hi`.
        struct MaxBits;
        impl RngCore for MaxBits {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut src = MaxBits;
        for _ in 0..4 {
            let x: f32 = src.gen_range(-1.0f32..1.0);
            assert!(x < 1.0, "got {x}, expected < 1.0");
            let y: f64 = src.gen_range(0.0f64..1.0);
            assert!(y < 1.0, "got {y}, expected < 1.0");
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
