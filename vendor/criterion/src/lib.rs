//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace's benches.
//!
//! The build environment has no registry access, so this crate stands in for
//! crates.io `criterion`. It performs simple wall-clock measurement — a
//! warm-up pass to calibrate iterations per sample, then `sample_size` timed
//! samples within roughly `measurement_time` — and prints mean/min/max per
//! benchmark. There are no plots, baselines, or statistical analysis.
//!
//! Swap this for the real `criterion = "0.5"` in `[workspace.dependencies]`
//! once crates.io is reachable; no call sites need to change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.measurement_time = dur;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.warm_up_time = dur;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: None,
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label(), self, &mut f);
        self
    }
}

/// Identifies one benchmark, optionally `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
///
/// `measurement_time`/`sample_size` overrides apply only within the group,
/// matching real criterion's scoping.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Option<Duration>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    fn effective_config(&self) -> Criterion {
        let mut config = self.criterion.clone();
        if let Some(dur) = self.measurement_time {
            config.measurement_time = dur;
        }
        if let Some(n) = self.sample_size {
            config.sample_size = n;
        }
        config
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, &self.effective_config(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, &self.effective_config(), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Overrides the measurement time for benchmarks in this group only.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = Some(dur);
        self
    }

    /// Overrides the sample count for benchmarks in this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Ends the group. (No-op in this shim; provided for API compatibility.)
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to be measurable.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.calibrating {
            // One un-timed execution so calibration can estimate cost.
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples
            .push(elapsed / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX));
    }
}

fn run_benchmark<F>(label: &str, config: &Criterion, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: run single iterations until warm_up_time elapses to
    // estimate per-iteration cost.
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    let mut calibration_runs = 0u32;
    while warm_up_start.elapsed() < config.warm_up_time && calibration_runs < 10_000 {
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            calibrating: true,
        };
        f(&mut bencher);
        if let Some(&sample) = bencher.samples.last() {
            per_iter = sample;
        }
        calibration_runs += 1;
    }

    let per_sample = config.measurement_time.max(Duration::from_millis(10))
        / u32::try_from(config.sample_size).unwrap_or(u32::MAX);
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut bencher = Bencher {
        iters_per_sample,
        samples: Vec::with_capacity(config.sample_size),
        calibrating: false,
    };
    for _ in 0..config.sample_size {
        f(&mut bencher);
    }

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<40} (no samples — closure never called iter)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1);
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  \
         ({} samples x {} iters)",
        samples.len(),
        iters_per_sample
    );
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a bench binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
