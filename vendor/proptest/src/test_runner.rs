//! The per-test case loop behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runtime knobs for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried with new ones.
    Reject,
}

impl TestCaseError {
    /// Builds the failing variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

fn seed_for(test_name: &str, case: u64) -> u64 {
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across tests, so failures reproduce deterministically.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `case_fn` until `config.cases` cases pass, panicking on the first
/// failure. Rejected cases ([`TestCaseError::Reject`]) are replaced, up to a
/// bounded number of retries.
pub fn run(
    test_name: &str,
    config: ProptestConfig,
    mut case_fn: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let max_attempts = u64::from(config.cases) * 8;
    let mut passed = 0u64;
    for attempt in 0..max_attempts {
        if passed >= u64::from(config.cases) {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed_for(test_name, attempt));
        match case_fn(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(message)) => {
                panic!("proptest {test_name}: case {attempt} failed\n{message}")
            }
        }
    }
    if passed < u64::from(config.cases) {
        panic!(
            "proptest {test_name}: too many rejected cases \
             ({passed}/{} passed after {max_attempts} attempts)",
            config.cases
        );
    }
}
