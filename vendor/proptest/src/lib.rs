//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace's property tests.
//!
//! The build environment has no registry access, so this crate stands in for
//! crates.io `proptest`. It provides deterministic random-input testing
//! (no shrinking): each `#[test]` produced by [`proptest!`] runs its body for
//! `ProptestConfig::cases` generated inputs, seeded per-case so failures are
//! reproducible. Supported surface:
//!
//! * [`strategy::Strategy`] with `prop_map`, numeric range strategies, and
//!   [`strategy::Just`],
//! * [`collection::vec`] and [`sample::select`],
//! * [`prop_oneof!`] (weighted or unweighted arms),
//! * [`proptest!`] with optional `#![proptest_config(...)]`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Swap this for the real `proptest = "1"` in `[workspace.dependencies]`
//! once crates.io is reachable; no call sites need to change.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Combines several strategies producing the same value type, choosing one
/// arm per generated case. Arms may carry integer weights: `3 => strat`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current test case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),+ $(,)?
         ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), $cfg, |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}
