//! The [`Strategy`] trait and primitive strategy combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A boxed, type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: strategies only generate.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value using `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted choice between strategies, as built by [`crate::prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u32,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of bounds")
    }
}
