//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive bound on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
