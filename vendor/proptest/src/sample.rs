//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniformly selects one of the given values per generated case.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty set");
    Select { options }
}

/// The strategy returned by [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
